#include "rep/quorum.h"

#include <algorithm>

namespace repdir::rep {

QuorumConfig QuorumConfig::Uniform(std::uint32_t count, Votes read_quorum,
                                   Votes write_quorum, NodeId first_node) {
  std::vector<Replica> replicas;
  replicas.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    replicas.push_back(Replica{first_node + i, 1});
  }
  return QuorumConfig(std::move(replicas), read_quorum, write_quorum);
}

Status QuorumConfig::Validate(bool require_write_intersection) const {
  if (replicas_.empty()) {
    return Status::InvalidArgument("suite has no representatives");
  }
  std::set<NodeId> seen;
  for (const Replica& r : replicas_) {
    if (r.node == kInvalidNode) {
      return Status::InvalidArgument("replica with invalid node id");
    }
    if (!seen.insert(r.node).second) {
      return Status::InvalidArgument("duplicate replica node " +
                                     std::to_string(r.node));
    }
  }
  const Votes total = TotalVotes();
  if (total == 0) return Status::InvalidArgument("total votes is zero");
  if (read_quorum_ == 0 || write_quorum_ == 0) {
    return Status::InvalidArgument("quorums must be positive");
  }
  if (read_quorum_ > total || write_quorum_ > total) {
    return Status::InvalidArgument("quorum exceeds total votes");
  }
  if (read_quorum_ + write_quorum_ <= total) {
    return Status::InvalidArgument(
        "R + W must exceed total votes (read/write intersection)");
  }
  if (require_write_intersection && 2 * write_quorum_ <= total) {
    return Status::InvalidArgument(
        "2W must exceed total votes (write/write intersection)");
  }
  return Status::Ok();
}

Votes QuorumConfig::TotalVotes() const {
  Votes total = 0;
  for (const Replica& r : replicas_) total += r.votes;
  return total;
}

Votes QuorumConfig::VotesOf(NodeId node) const {
  for (const Replica& r : replicas_) {
    if (r.node == node) return r.votes;
  }
  return 0;
}

std::vector<NodeId> QuorumConfig::Nodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(replicas_.size());
  for (const Replica& r : replicas_) nodes.push_back(r.node);
  return nodes;
}

std::vector<NodeId> QuorumConfig::VotingNodes() const {
  std::vector<NodeId> nodes;
  for (const Replica& r : replicas_) {
    if (r.votes > 0) nodes.push_back(r.node);
  }
  return nodes;
}

std::vector<NodeId> QuorumConfig::WeakNodes() const {
  std::vector<NodeId> nodes;
  for (const Replica& r : replicas_) {
    if (r.votes == 0) nodes.push_back(r.node);
  }
  return nodes;
}

bool QuorumConfig::HasVotes(const std::set<NodeId>& nodes, Votes quota) const {
  Votes total = 0;
  for (const NodeId n : nodes) total += VotesOf(n);
  return total >= quota;
}

std::string QuorumConfig::ToString() const {
  std::string out = std::to_string(replicas_.size()) + "-" +
                    std::to_string(read_quorum_) + "-" +
                    std::to_string(write_quorum_);
  const bool weighted = std::any_of(replicas_.begin(), replicas_.end(),
                                    [](const Replica& r) { return r.votes != 1; });
  if (weighted) {
    out += " (votes:";
    for (const Replica& r : replicas_) {
      out += " " + std::to_string(r.node) + "=" + std::to_string(r.votes);
    }
    out += ")";
  }
  return out;
}

}  // namespace repdir::rep
