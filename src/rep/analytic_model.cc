#include "rep/analytic_model.h"

namespace repdir::rep {

Result<AnalyticPrediction> PredictDeleteOverheads(const QuorumConfig& config,
                                                  AnalyticInputs inputs) {
  REPDIR_RETURN_IF_ERROR(config.Validate());
  for (const Replica& r : config.replicas()) {
    if (r.votes != 1) {
      return Status::InvalidArgument(
          "analytic model covers uniform one-vote suites");
    }
  }
  if (inputs.updates_per_delete < 0) {
    return Status::InvalidArgument("updates_per_delete must be >= 0");
  }

  const double v = static_cast<double>(config.size());
  const double w = static_cast<double>(config.write_quorum());
  const double q = 1.0 - w / v;  // miss probability per write
  const double u = inputs.updates_per_delete;

  AnalyticPrediction out;
  out.present_at_rep = 1.0 - q / (1.0 + u * (1.0 - q));
  out.deletions_while_coalescing = (v - w) * out.present_at_rep;
  out.entries_in_ranges_coalesced = out.present_at_rep * v / w;
  out.insertions_while_coalescing = 2.0 * w * (1.0 - out.present_at_rep);
  return out;
}

}  // namespace repdir::rep
