// ShardedDirectory: the range-partitioned directory, client side.
//
// A router over N per-shard DirectorySuites that exposes the SAME
// directory API as a single suite - Lookup/Insert/Update/Delete, ordered
// iteration, batches - while partitioning user keys across shards by range
// (see rep/shard_map.h). Key properties:
//
//   * Per-key routing: every operation consults the current shard map
//     snapshot and runs on the owning shard's suite. The suite keeps its
//     full per-shard quorum/transaction machinery, so a single-shard
//     operation costs exactly what it would in an unsharded deployment.
//   * Stale-map recovery: representatives fence requests carrying an old
//     shard epoch with kWrongShard (rep/dir_rep_node.h). The router reacts
//     by re-reading the authority, re-stamping its clients, and re-routing
//     the operation - bounded by Options::max_reroutes.
//   * Cross-shard transactions: a batch spanning shards, or a write that
//     must dual-apply during an online migration, opens one SuiteTxn per
//     touched shard under ONE transaction id (replica sets are disjoint;
//     all suites share the router's TxnIdFactory), detaches each, and
//     drives a single two-phase commit over the union of participants -
//     all-or-nothing across shards.
//   * Deletes never cross shards: each shard's storage carries its own
//     LOW/HIGH sentinels, so a delete's Fig. 13 coalesce is naturally
//     clipped to the owning shard - the shard boundary acts as a virtual
//     fence and a key adjacent to it on the other side is untouched by
//     construction.
//   * Ordered iteration stitches shards: NextKey walks the owning shard
//     first, then subsequent shards in range order, clamping out entries a
//     migration has copied away but not yet retired (the only transient in
//     which a shard's storage holds keys outside its range).
//
// A ShardedDirectory is a single client, exactly like DirectorySuite: one
// instance per thread, instances freely sharing the transport, the
// representatives, and the ShardMapAuthority.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "net/retry.h"
#include "net/rpc_client.h"
#include "rep/dir_suite.h"
#include "rep/shard_map.h"
#include "txn/coordinator.h"
#include "txn/txn_id.h"

namespace repdir::rep {

class ShardedDirectory {
 public:
  struct Options {
    /// Forwarded into every per-shard suite.
    std::uint64_t policy_seed = 42;
    net::RetryPolicy rpc_retry{1};
    std::uint32_t neighbor_batch = 1;
    bool enable_version_cache = false;
    MetricsRegistry* metrics = nullptr;
    TraceSink* trace = nullptr;

    /// Map refresh attempts after a kWrongShard before giving up.
    int max_reroutes = 4;

    /// Commit/abort decision callback covering BOTH suite-driven
    /// single-shard transactions and the router's own cross-shard ones
    /// (see DirectorySuite::Options::decision_hook).
    std::function<void(TxnId, bool)> decision_hook;
  };

  /// `client_node` identifies this router on the transport; it must be
  /// distinct from every representative AND from other coordinators'
  /// client nodes (it seeds the shared transaction-id factory).
  ShardedDirectory(net::Transport& transport, NodeId client_node,
                   ShardMapAuthority& authority, Options options);
  ShardedDirectory(net::Transport& transport, NodeId client_node,
                   ShardMapAuthority& authority)
      : ShardedDirectory(transport, client_node, authority, Options()) {}

  using LookupResult = DirectorySuite::LookupResult;
  using NextKeyResult = DirectorySuite::NextKeyResult;
  using BatchOp = DirectorySuite::BatchOp;
  using BatchOpResult = DirectorySuite::BatchOpResult;
  using BatchResult = DirectorySuite::BatchResult;

  // --- The directory API (same contract as DirectorySuite) ---

  Result<LookupResult> Lookup(const UserKey& key);
  Status Insert(const UserKey& key, const Value& value);
  Status Update(const UserKey& key, const Value& value);
  Status Delete(const UserKey& key);
  Result<NextKeyResult> NextKey(const UserKey& key);
  Result<NextKeyResult> FirstKey();

  /// One atomic batch, possibly spanning shards. Single-shard batches (the
  /// common case under range locality) take the suite's two-wave fast path
  /// unchanged; cross-shard batches run each shard's sub-batch inside one
  /// shared transaction and finish with one 2PC over every participant.
  /// Ops execute grouped by shard (submission order within a shard); ops on
  /// different shards touch different keys, so the outcome is equivalent to
  /// submission order.
  BatchResult ExecuteBatch(const std::vector<BatchOp>& ops);

  /// Full ordered scan of the stitched keyspace (a sequence of NextKey
  /// transactions; quiesce writers for a point-in-time snapshot).
  struct ScanEntry {
    UserKey key;
    Value value;
  };
  Result<std::vector<ScanEntry>> Scan();

  // --- Map plumbing / introspection ---

  /// Re-reads the authority and adopts a newer map: builds suites for new
  /// shards, drops suites for retired ones, re-stamps every client's shard
  /// epoch. Called automatically on kWrongShard; callers may also invoke it
  /// after installing a map to skip the first bounced request.
  void RefreshMap();

  std::uint64_t map_version() const { return map_->version; }
  std::size_t shard_count() const { return map_->entries.size(); }
  const ShardMap& map() const { return *map_; }

  /// The per-shard suite (tests, stats breakdowns); null if unknown.
  DirectorySuite* shard_suite(ShardId shard);

  /// Shards owning ranges right now, in range order.
  std::vector<ShardId> shard_ids() const;

 private:
  enum class WriteKind : std::uint8_t { kInsert, kUpdate, kDelete };

  DirectorySuite& SuiteFor(ShardId shard);

  /// Builds (or reuses) the suite set for `map`, stamping every client
  /// with the map's version as its shard epoch.
  void AdoptMap(std::shared_ptr<const ShardMap> map);

  /// Runs `fn` and, on kWrongShard, refreshes the map and retries -
  /// at most options_.max_reroutes times.
  template <typename Fn>
  auto WithReroute(Fn&& fn) -> decltype(fn());

  /// True when `key` falls inside `owner`'s migrating sub-range.
  static bool InMigrationRange(const ShardEntry& owner, const UserKey& key);

  /// Single-shot write routed to `owner`, dual-applied to the migration
  /// target when the key is mid-handoff.
  Status RoutedWrite(const UserKey& key, WriteKind kind, const Value& value);

  /// Applies the write to the target shard's transaction with upsert
  /// semantics: the handoff copy may or may not have reached the target
  /// yet, and a delete may refer to a key the target never saw.
  static Status MirrorWrite(SuiteTxn& target, WriteKind kind,
                            const UserKey& key, const Value& value);

  /// NextKey body over one map snapshot: owner shard first, then later
  /// shards in range order, clamping stale out-of-range entries.
  Result<NextKeyResult> StitchedNext(const UserKey& key, bool first_key);

  void NotifyDecision(TxnId txn, bool committed);

  net::Transport* transport_;
  NodeId client_node_;
  ShardMapAuthority* authority_;
  Options options_;
  txn::TxnIdFactory txn_ids_;  ///< Shared with every per-shard suite.
  net::RpcClient ctl_;         ///< Drives cross-shard 2PC waves.
  txn::TwoPhaseCommitter committer_;
  std::shared_ptr<const ShardMap> map_;
  std::map<ShardId, std::unique_ptr<DirectorySuite>> suites_;

  Counter* reroutes_;       ///< "router.reroutes"
  Counter* refreshes_;      ///< "router.map_refreshes"
  Counter* cross_shard_;    ///< "router.txn.cross_shard"
  Counter* mirrored_;       ///< "router.writes.mirrored"
  Counter* clamped_;        ///< "router.scan.clamped"
};

}  // namespace repdir::rep
