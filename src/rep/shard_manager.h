// ShardManager: online shard split and merge.
//
// Both reconfigurations are multi-step, crash-safe protocols that keep the
// directory serving reads and writes throughout. The manager journals its
// progress (one record per completed step) and an interrupted operation is
// re-driven by Resume(): every step is idempotent, so replaying from the
// last recorded step is always safe.
//
// Split of shard S at fence key m into new shard T (base map version v):
//   1. configure T's replicas: range [m, high(S)), epoch v+1;
//   2. install map v+1 - S marked migrating [m, high(S)) -> T, T staging.
//      Routers picking this up dual-write every [m, ..) mutation to both;
//   3. configure S's replicas at epoch v+1, fencing routers still at v
//      (their next write bounces with kWrongShard and re-routes). From here
//      no mutation in the moving range can land on S alone;
//   4. copy [m, high(S)) from S to T in chunked cross-shard transactions:
//      each chunk reads from S under that transaction's read locks and
//      insert-if-absent's into T through the target suite's ordinary
//      versioned write path, finishing with one two-phase commit - a chunk
//      either moves entirely or not at all, and a dual-written newer value
//      on T is never overwritten;
//   5. the flip: configure T at epoch v+2, install map v+2 (S's range ends
//      at m, T owns [m, high(S))), configure S narrowed at epoch v+2.
//      Reads of the moved range now go to T;
//   6. retire: erase every entry >= m from S's replicas under one 2PC
//      (kRetireRange preserves the surviving range's gap versions exactly,
//      so S's remaining keyspace is untouched - see rep/messages.h).
//
// Merge of shard T into its LEFT neighbor S is the mirror image: widen S's
// replica bounds first, mark T migrating (everything) -> S, copy, flip to
// a map without T, retire T's whole range.
//
// The manager is the single writer of the ShardMapAuthority; run one
// manager per deployment. Its client node id must be distinct from every
// representative and every router (it coordinates transactions).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "net/rpc_client.h"
#include "rep/dir_suite.h"
#include "rep/shard_map.h"
#include "txn/coordinator.h"
#include "txn/txn_id.h"

namespace repdir::rep {

/// Durable append-only progress record of the shard manager. One line per
/// event; Append must not return until the line would survive the
/// manager's death (the file journal flushes through to the OS).
class ShardJournal {
 public:
  virtual ~ShardJournal() = default;
  virtual Status Append(const std::string& line) = 0;
  virtual Result<std::vector<std::string>> ReadAll() = 0;
};

/// In-memory journal: survives nothing, but lets tests drive the resume
/// path by handing the same instance to a successor manager.
class MemShardJournal final : public ShardJournal {
 public:
  Status Append(const std::string& line) override {
    lines_.push_back(line);
    return Status::Ok();
  }
  Result<std::vector<std::string>> ReadAll() override { return lines_; }

 private:
  std::vector<std::string> lines_;
};

/// File-backed journal (append + flush per record).
class FileShardJournal final : public ShardJournal {
 public:
  explicit FileShardJournal(std::string path) : path_(std::move(path)) {}
  Status Append(const std::string& line) override;
  Result<std::vector<std::string>> ReadAll() override;

 private:
  std::string path_;
};

class ShardManager {
 public:
  struct Options {
    /// Entries moved per copy transaction. Smaller chunks shorten the
    /// read-lock window on the source (less writer stalling); larger ones
    /// amortize the per-chunk 2PC.
    std::size_t copy_chunk = 32;

    /// Retries of a copy chunk whose 2PC aborted (lock conflicts with
    /// dual-writing routers resolve on retry).
    int copy_retries = 8;

    /// Crash injection for tests: fail with kAborted right after journaling
    /// completion of this step number (-1 = off). A successor manager on
    /// the same journal resumes from there.
    int fail_after_step = -1;

    net::RetryPolicy rpc_retry{3};
    MetricsRegistry* metrics = nullptr;

    /// Progress journal; null = a private in-memory journal (no crash
    /// safety, fine for benches).
    ShardJournal* journal = nullptr;
  };

  ShardManager(net::Transport& transport, NodeId client_node,
               ShardMapAuthority& authority, Options options);
  ShardManager(net::Transport& transport, NodeId client_node,
               ShardMapAuthority& authority)
      : ShardManager(transport, client_node, authority, Options()) {}

  /// Splits `source` at `fence`: keys >= fence move to the new shard
  /// `target` replicated per `target_config`. The fence must fall strictly
  /// inside the source's range and `target` must be a fresh shard id.
  Status Split(ShardId source, const UserKey& fence, ShardId target,
               QuorumConfig target_config);

  /// Merges shard `victim` into its left neighbor; the victim must not be
  /// the first shard.
  Status Merge(ShardId victim);

  /// Re-drives the journal's unfinished operation, if any (idempotent;
  /// OK when nothing is pending).
  Status Resume();

  /// Pushes every shard's current range/epoch to its replicas - after a
  /// replica process restart, whose shard bounds are volatile.
  Status ReconfigureAll();

 private:
  struct SplitPlan {
    ShardId source = 0;
    ShardId target = 0;
    std::uint64_t base = 0;  ///< Map version the operation started from.
    UserKey fence;
    QuorumConfig target_config;
  };
  struct MergePlan {
    ShardId victim = 0;
    ShardId left = 0;
    std::uint64_t base = 0;
    UserKey victim_low;
    bool victim_has_high = false;
    UserKey victim_high;
    QuorumConfig victim_config;
  };

  Status RunSplit(const SplitPlan& plan, int from_step);
  Status RunMerge(const MergePlan& plan, int from_step);

  /// Journals completion of `step` and applies the injected crash.
  Status FinishStep(int step);

  /// Installs `map` unless the authority is already at (or past) its
  /// version - the resume-idempotent install.
  Status InstallUpTo(ShardMap map);

  /// Pushes [low, high) @ epoch to every replica of `config`.
  Status Configure(const QuorumConfig& config, const UserKey& low,
                   bool has_high, const UserKey& high, std::uint64_t epoch);

  /// Erases every entry >= `low` from all of `config`'s replicas under one
  /// two-phase commit.
  Status Retire(const QuorumConfig& config, const UserKey& low);

  /// Copies every entry with key in [low, high) from `source` to `target`
  /// in chunked cross-shard transactions (insert-if-absent on the target).
  Status CopyRange(DirectorySuite& source, DirectorySuite& target,
                   const UserKey& low, bool has_high, const UserKey& high);

  std::unique_ptr<DirectorySuite> MakeSuite(const QuorumConfig& config);

  net::Transport* transport_;
  NodeId client_node_;
  ShardMapAuthority* authority_;
  Options options_;
  std::unique_ptr<MemShardJournal> own_journal_;
  ShardJournal* journal_;
  txn::TxnIdFactory txn_ids_;
  net::RpcClient ctl_;
  txn::TwoPhaseCommitter committer_;

  Counter* splits_;         ///< "shardmgr.splits"
  Counter* merges_;         ///< "shardmgr.merges"
  Counter* copy_txns_;      ///< "shardmgr.copy.txns"
  Counter* copied_;         ///< "shardmgr.copy.entries"
  Counter* retired_;        ///< "shardmgr.retired.entries"
};

}  // namespace repdir::rep
