// Quorum configuration for a directory suite (Gifford-style weighted
// voting). Each representative holds some number of votes; reads gather R
// votes, writes W votes, with R + W > V (every read quorum intersects every
// write quorum) and W > V/2 (any two write quorums intersect, so version
// numbers advance through a chain of intersecting writes).
//
// The paper's x-y-z notation (e.g. "3-2-2 directory") means x
// representatives with one vote each, R = y, W = z.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace repdir::rep {

struct Replica {
  NodeId node = kInvalidNode;
  Votes votes = 1;
};

class QuorumConfig {
 public:
  QuorumConfig() = default;
  QuorumConfig(std::vector<Replica> replicas, Votes read_quorum,
               Votes write_quorum)
      : replicas_(std::move(replicas)),
        read_quorum_(read_quorum),
        write_quorum_(write_quorum) {}

  /// Convenience for the paper's x-y-z suites: `count` one-vote replicas on
  /// nodes `first_node .. first_node+count-1`.
  static QuorumConfig Uniform(std::uint32_t count, Votes read_quorum,
                              Votes write_quorum, NodeId first_node = 1);

  /// Checks R + W > V, quorums achievable, non-empty suite, distinct node
  /// ids. The paper requires only read/write intersection: every suite
  /// modification performs a read-quorum lookup inside the same two-phase-
  /// locked transaction, so same-key modifications serialize through the
  /// read quorum even when two write quorums are disjoint (e.g. 4-3-2).
  /// Pass `require_write_intersection` to additionally demand W > V/2
  /// (Gifford's condition for plain files, where writes do not read first).
  Status Validate(bool require_write_intersection = false) const;

  const std::vector<Replica>& replicas() const { return replicas_; }
  Votes read_quorum() const { return read_quorum_; }
  Votes write_quorum() const { return write_quorum_; }

  Votes TotalVotes() const;
  Votes VotesOf(NodeId node) const;  ///< 0 if not a member.

  std::size_t size() const { return replicas_.size(); }
  std::vector<NodeId> Nodes() const;

  /// Voting members only (vote count > 0).
  std::vector<NodeId> VotingNodes() const;

  /// Zero-vote "weak" representatives (paper §2: usable as hints). They
  /// never count toward quorums; the suite propagates writes to them
  /// best-effort and folds their replies into reads for freshness.
  std::vector<NodeId> WeakNodes() const;

  /// Whether the given nodes muster at least `quota` votes.
  bool HasVotes(const std::set<NodeId>& nodes, Votes quota) const;
  bool IsReadQuorum(const std::set<NodeId>& nodes) const {
    return HasVotes(nodes, read_quorum_);
  }
  bool IsWriteQuorum(const std::set<NodeId>& nodes) const {
    return HasVotes(nodes, write_quorum_);
  }

  /// "3-2-2" style description (vote-weighted configs show votes too).
  std::string ToString() const;

 private:
  std::vector<Replica> replicas_;
  Votes read_quorum_ = 0;
  Votes write_quorum_ = 0;
};

}  // namespace repdir::rep
