// Instrumentation for the paper's §4 performance characterization.
//
// Three statistics (Figures 14 and 15):
//   * "Entries in ranges coalesced"  - per representative in the write
//     quorum of a delete: how many entries lay strictly between the real
//     predecessor and real successor (the deleted entry where present,
//     plus ghosts). One sample per (delete x write-quorum member).
//   * "Deletions while coalescing"   - per delete: ghost entries physically
//     removed across the suite (erased entries that were not the target).
//   * "Insertions while coalescing"  - per delete: DirRepInsert calls
//     needed to materialize the real predecessor/successor on write-quorum
//     members that lacked them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"

namespace repdir::rep {

/// Raw observation from one DirSuiteDelete.
struct DeleteProbe {
  std::vector<std::uint32_t> entries_in_range_per_rep;
  std::uint32_t ghost_deletions = 0;
  std::uint32_t materializing_insertions = 0;
};

struct OpCounters {
  std::uint64_t lookups = 0;
  std::uint64_t inserts = 0;
  std::uint64_t updates = 0;
  std::uint64_t deletes = 0;
  std::uint64_t aborted = 0;      ///< Transactions that rolled back.
  std::uint64_t unavailable = 0;  ///< Ops that could not collect a quorum.
  std::uint64_t neighbor_fetches = 0;  ///< Predecessor/successor batch RPCs
                                       ///< issued by real-neighbor searches.

  // Version-cache accounting (mirrors of the "suite.cache.*" /
  // "suite.write.fast_path" registry counters; zero when the cache is off).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_invalidations = 0;  ///< Cached keys removed.
  std::uint64_t fast_path_writes = 0;     ///< Writes that skipped the read round.
  std::uint64_t validated_reads = 0;      ///< Lookups answered by "unchanged" quorums.
  std::uint64_t cache_fallbacks = 0;      ///< Fast paths re-run as read-then-write.
};

class SuiteStats {
 public:
  void RecordDelete(const DeleteProbe& probe) {
    for (const std::uint32_t n : probe.entries_in_range_per_rep) {
      entries_in_ranges_coalesced_.Add(n);
      entries_hist_.Add(n);
    }
    deletions_while_coalescing_.Add(probe.ghost_deletions);
    insertions_while_coalescing_.Add(probe.materializing_insertions);
  }

  const RunningStat& entries_in_ranges_coalesced() const {
    return entries_in_ranges_coalesced_;
  }
  const RunningStat& deletions_while_coalescing() const {
    return deletions_while_coalescing_;
  }
  const RunningStat& insertions_while_coalescing() const {
    return insertions_while_coalescing_;
  }
  const CountHistogram& entries_histogram() const { return entries_hist_; }

  OpCounters& counters() { return counters_; }
  const OpCounters& counters() const { return counters_; }

  void Reset() { *this = SuiteStats(); }

 private:
  RunningStat entries_in_ranges_coalesced_;
  RunningStat deletions_while_coalescing_;
  RunningStat insertions_while_coalescing_;
  CountHistogram entries_hist_{64};
  OpCounters counters_;
};

}  // namespace repdir::rep
