// DirRepNode: one complete directory representative - storage backend,
// write-ahead log, transactional participant, and the RPC service that
// exposes the Figure 6 operations plus two-phase-commit control.
//
// The node also models crash/recovery: Crash() wipes all volatile state
// (storage structure, lock table, transaction table) and discards unflushed
// log bytes; Recover() rebuilds from the surviving log and reports in-doubt
// transactions for the coordinator to resolve.
#pragma once

#include <memory>
#include <mutex>

#include "net/rpc_server.h"
#include "rep/messages.h"
#include "storage/btree_storage.h"
#include "storage/log_device.h"
#include "storage/map_storage.h"
#include "storage/recovery.h"
#include "txn/participant.h"

namespace repdir::rep {

struct DirRepNodeOptions {
  enum class Backend : std::uint8_t { kMap, kBTree };

  Backend backend = Backend::kMap;
  int btree_fanout = 16;

  /// Attach a write-ahead log (costs a little time in big simulations; the
  /// statistical benches run without it, durability tests with it).
  bool enable_wal = false;

  /// Non-empty: back the WAL with a real file at this path instead of the
  /// in-memory simulated disk. The node then survives the death of its own
  /// process - the multi-process chaos cluster runs this way, SIGKILLing
  /// nodes and recovering them from the surviving file.
  std::string wal_path;

  /// WAL group-commit tuning (see storage::GroupCommitConfig). Flush
  /// coalescing is always on; this only adds the bounded leader window.
  storage::GroupCommitConfig group_commit;

  /// Lock discipline for the participant.
  txn::ParticipantOptions participant;

  /// Shared deadlock detector (threaded deployments); may be null.
  lock::DeadlockDetector* detector = nullptr;
};

class DirRepNode {
 public:
  explicit DirRepNode(NodeId id, DirRepNodeOptions options = {});

  NodeId id() const { return id_; }
  net::RpcServer& server() { return server_; }
  txn::TxnParticipant& participant() { return *participant_; }
  storage::RepStorage& storage() { return *storage_; }
  const storage::RepStorage& storage() const { return *storage_; }

  /// The simulated log medium; null when WAL is disabled or file-backed.
  storage::MemLogDevice* log_device() { return mem_log_; }

  /// The log medium regardless of backing; null when WAL is disabled.
  storage::LogDevice* raw_log_device() { return log_device_.get(); }

  /// Simulated crash: volatile state gone, unflushed log bytes lost.
  /// (Callers should also mark the node down in the network model.)
  /// Requires the in-memory log medium (a file-backed node crashes by
  /// dying for real).
  void Crash();

  /// Crash with a torn tail: the first `keep_bytes` of the unflushed log
  /// tail reach the medium before the power fails.
  void CrashTorn(std::size_t keep_bytes);

  /// Rebuilds state from the durable log. Requires WAL.
  Result<storage::RecoveryOutcome> Recover();

  /// Resolves one in-doubt transaction discovered by Recover().
  Status ResolveInDoubt(TxnId txn, bool commit);

  /// Shard assignment of this representative (see kConfigureShard). While
  /// `enforced`, the node owns user keys in [low, high) - `has_high` false
  /// means unbounded above - as of shard-map version `epoch`:
  ///   * data and prepare requests stamped with a non-zero shard_epoch
  ///     older than `epoch` answer kWrongShard (stale-map fence);
  ///   * inserts of user keys outside [low, high) answer kWrongShard
  ///     (mis-routed write tripwire).
  /// Commit/abort are never fenced - a 2PC decision must always land.
  /// The assignment is deliberately volatile node configuration, not
  /// replicated state: it survives simulated Crash() (the process persists)
  /// and is re-pushed by the shard manager after a real restart.
  struct ShardBounds {
    bool enforced = false;
    UserKey low;
    bool has_high = false;
    UserKey high;
    std::uint64_t epoch = 0;
  };
  ShardBounds shard_bounds() const;
  void SetShardBounds(ShardBounds bounds);

 private:
  void RegisterHandlers();
  std::unique_ptr<storage::RepStorage> MakeBackend() const;
  Status CheckEpoch(const net::RpcRequest& env) const;
  Status CheckOwned(const storage::RepKey& key) const;

  NodeId id_;
  DirRepNodeOptions options_;
  std::unique_ptr<storage::RepStorage> storage_;
  std::unique_ptr<storage::LogDevice> log_device_;
  storage::MemLogDevice* mem_log_ = nullptr;  ///< log_device_ when in-memory.
  std::unique_ptr<storage::WalWriter> wal_;
  std::unique_ptr<txn::TxnParticipant> participant_;
  net::RpcServer server_;
  mutable std::mutex shard_mu_;
  ShardBounds shard_;  ///< Guarded by shard_mu_.
};

}  // namespace repdir::rep
