// DirectorySuite: the paper's replicated directory, client side.
//
// Implements the suite operations over a set of DirRepNode services reached
// through a Transport:
//   * Lookup  - Fig. 8: read-quorum inquiry, highest version wins.
//   * Insert  - Fig. 9: read-quorum lookup to learn the key's current
//               version (entry or gap), then write version+1 to a write
//               quorum. An existing entry is an error (kAlreadyExists).
//   * Update  - analogous to Insert but requires the entry to exist.
//   * Delete  - Fig. 13: locate the real predecessor and real successor
//               (Fig. 12, skipping ghosts), materialize them on every
//               write-quorum member, then coalesce the range with a version
//               exceeding everything observed inside it.
//   * NextKey - ordered iteration: the smallest current key greater than a
//               given key (built from the Fig. 12 real-successor search).
//
// Every public single-shot operation runs as one distributed transaction:
// representative operations acquire Fig. 7 range locks under strict 2PL and
// the operation finishes with two-phase commit across the representatives
// it touched. §3.1's "arbitrarily complex atomic transactions" are exposed
// through Begin(): a SuiteTxn groups any number of operations into one
// atomic, isolated unit.
//
// Every quorum-wide step - pinging candidates, the Fig. 8 inquiry, the
// write fan-out, delete materialization, coalesce, and the 2PC rounds -
// runs as one scatter-gather wave (net::RpcClient::ParallelCall), so an
// operation's latency scales with its round count, not its message count.
// On an inline transport (InProcTransport) the waves execute in slot order
// and the suite stays byte-for-byte deterministic.
//
// Failures (unreachable nodes, deadlock aborts) roll the transaction back
// and surface as kUnavailable / kAborted.
//
// A DirectorySuite instance is a single client: use one instance per thread
// (instances may freely share the Transport and representatives).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "net/retry.h"
#include "net/rpc_client.h"
#include "rep/messages.h"
#include "rep/quorum_policy.h"
#include "rep/suite_stats.h"
#include "rep/version_cache.h"
#include "txn/coordinator.h"
#include "txn/txn_id.h"

namespace repdir::rep {

class SuiteTxn;
class BatchBuilder;

class DirectorySuite {
 public:
  struct Options {
    QuorumConfig config;

    /// Quorum selection policy; defaults to RandomQuorumPolicy(policy_seed)
    /// - the paper's simulation setting.
    std::unique_ptr<QuorumPolicy> policy;
    std::uint64_t policy_seed = 42;

    /// Per-representative call retry (transport-level failures only).
    net::RetryPolicy rpc_retry{1};

    /// Neighbors fetched per DirRepPredecessor/Successor RPC during the
    /// real-neighbor search. 1 reproduces the paper's Fig. 12 sketch; §4
    /// suggests 3 ("the real predecessor and real successor will often be
    /// located using one remote procedure call" per member) - validated by
    /// bench_batching.
    std::uint32_t neighbor_batch = 1;

    /// Observability sinks. Both are passive - they never feed back into
    /// behaviour, so deterministic runs stay bit-identical whether or not
    /// they are read. Null selects the process-wide defaults.
    MetricsRegistry* metrics = nullptr;
    TraceSink* trace = nullptr;

    /// Client-side version cache (see rep/version_cache.h): quorum replies
    /// populate it, uncontended single-shot writes skip their read round
    /// via guarded DirRepInsert, and cached lookups let read quorums answer
    /// "unchanged" instead of re-shipping values. Off by default so
    /// deterministic tests and the paper-figure reproductions keep their
    /// exact message flows; flip it on per suite to opt in. The guarded
    /// fast-path write additionally requires pairwise-intersecting write
    /// quorums (2W > V) and disables itself - validated reads stay on -
    /// when the configuration lacks them.
    bool enable_version_cache = false;
    std::size_t version_cache_capacity = 1024;

    /// Bounded-staleness reads (LookupStale): answer from ONE designated
    /// representative, no quorum round. The answer is only as fresh as
    /// that replica, so this is meaningful when a rep::Reconciler
    /// periodically folds a read quorum's state into it - the staleness
    /// bound is then the reconciliation interval. Off by default; when
    /// off, LookupStale fails with kFailedPrecondition.
    bool enable_stale_reads = false;

    /// The representative LookupStale reads from. 0 (default) picks the
    /// first weak (zero-vote) member - the natural read offload target,
    /// since it never serves quorum traffic - falling back to the first
    /// voting member when the suite has no weak members.
    NodeId stale_read_node = 0;

    /// Metric scope. Empty publishes the classic "suite.*" names; a shard
    /// id (e.g. "shard2") publishes "suite.shard2.*" instead, so a router's
    /// per-shard suites can share one registry and still break out cleanly.
    std::string metric_scope;

    /// External transaction-id factory shared between suites. The sharding
    /// router hands all its per-shard suites (and itself) ONE factory so a
    /// cross-shard transaction can hold the same id on every touched shard
    /// without colliding with any suite's internal transactions. Null: the
    /// suite owns a private factory seeded by its client node id. Must
    /// outlive the suite.
    txn::TxnIdFactory* txn_ids = nullptr;

    /// Invoked after every transaction decision this suite drives itself:
    /// (txn id, true) when the commit round succeeded, (txn id, false) on
    /// abort. Chaos harnesses use it to keep a coordinator decision map
    /// across single-shot operations whose transactions are internal.
    /// Detached transactions (see SuiteTxn::Detach) never reach it - their
    /// decision belongs to the external coordinator.
    std::function<void(TxnId, bool)> decision_hook;

    /// Latency-aware quorum planning (rep/adaptive_policy.h): measured
    /// per-node latency and health feed the preference order, so slow or
    /// quarantined representatives drop out of the minimal quorum while
    /// remaining reachable as fallback. Only used when `policy` is null.
    /// This deliberately feeds metrics-derived measurements back into
    /// behaviour; on deterministic transports the measurements themselves
    /// are deterministic (virtual clock), so runs stay reproducible.
    bool enable_adaptive_policy = false;

    /// Hedged single-shot read inquiries: the lookup wave goes to an
    /// optimistic read quorum with no ping round, returns as soon as R
    /// votes' replies are in, and after a p95-derived delay launches at
    /// most ONE backup wave to the spare voters ("rpc.hedges" /
    /// "rpc.hedge_wins"); straggler slots are detached and their locks
    /// released by a trailing abort ("rpc.hedge_cancels"). Applies only
    /// to the single-shot Lookup - multi-op transactions and write legs
    /// never hedge (a detached slot's cancel may not race later waves of
    /// the same transaction). On an inline transport the hedge never
    /// fires and results are bit-identical to the unhedged suite.
    bool enable_hedged_reads = false;

    /// Hedge delay = clamp(p95 of the lookup RPC latency, floor, cap);
    /// the floor also serves while fewer than 16 samples exist.
    DurationMicros hedge_delay_floor_us = 500;
    DurationMicros hedge_delay_cap_us = 100'000;

    /// Scoreboard feeding the adaptive policy and hedging decisions.
    /// Share one instance across suites (clients) to pool measurements;
    /// null creates a private one when either feature above is enabled.
    std::shared_ptr<net::NodeScoreboard> scoreboard;
  };

  /// `client_node` identifies this client on the transport (distinct from
  /// every representative node id).
  DirectorySuite(net::Transport& transport, NodeId client_node,
                 Options options);

  // --- Public directory API (paper §1 semantics) ---

  struct LookupResult {
    bool found = false;
    Value value;
  };

  /// The next current entry after `key` in key order, if any.
  struct NextKeyResult {
    bool found = false;  ///< false: no entry greater than `key`.
    UserKey key;
    Value value;
  };

  /// Returns the entry's value, or found=false. (The version number a
  /// suite lookup produces internally is not part of the user API.)
  Result<LookupResult> Lookup(const UserKey& key);

  /// Creates the entry; kAlreadyExists if the key is present.
  Status Insert(const UserKey& key, const Value& value);

  /// Replaces the entry's value; kNotFound if the key is absent.
  Status Update(const UserKey& key, const Value& value);

  /// Removes the entry; kNotFound if the key is absent.
  Status Delete(const UserKey& key);

  /// Single-replica read of `key` from Options::stale_read_node - one
  /// lookup RPC plus one read-only commit round to that node, no quorum.
  /// May return data as stale as the replica; see
  /// Options::enable_stale_reads for when that bound is trustworthy. A
  /// replica failure falls back to the quorum Lookup ("read.stale_fallbacks").
  Result<LookupResult> LookupStale(const UserKey& key);

  /// The smallest current entry with key > `key` (pass "" with
  /// `inclusive_from_low=true` via FirstKey() to start a scan).
  Result<NextKeyResult> NextKey(const UserKey& key);

  /// The smallest current entry in the directory.
  Result<NextKeyResult> FirstKey();

  /// Begins a multi-operation atomic transaction (§3.1). The returned
  /// handle borrows this suite; at most one transaction may be open per
  /// suite at a time (a suite is a single client).
  SuiteTxn Begin();

  /// Begins a transaction under a caller-supplied id - the cross-shard
  /// building block: a router opens one transaction per touched shard under
  /// ONE id (replica sets are disjoint, so participants never collide),
  /// Detach()es each, and drives a single 2PC over the union.
  SuiteTxn BeginAt(TxnId txn);

  /// What a detached transaction hands to an external coordinator.
  struct Handoff {
    std::set<NodeId> participants;
    bool wrote = false;
  };

  /// Shard-map version stamped into every envelope this suite sends;
  /// representatives configured with a newer epoch answer kWrongShard.
  /// 0 (the default) disables the fence.
  void set_shard_epoch(std::uint64_t epoch) { client_.set_shard_epoch(epoch); }
  std::uint64_t shard_epoch() const { return client_.shard_epoch(); }

  // --- Batched operations (the hot path) ---

  /// One operation of a batch. Delete is deliberately not batchable - it
  /// needs the Fig. 12/13 neighbor search and coalesce - and stays a
  /// single-shot operation.
  struct BatchOp {
    enum class Kind : std::uint8_t { kLookup, kInsert, kUpdate };
    Kind kind = Kind::kLookup;
    UserKey key;
    Value value;  ///< Payload of kInsert / kUpdate.
  };

  /// Per-operation outcome. A clean check failure (kAlreadyExists on
  /// Insert, kNotFound on Update) is reported here WITHOUT failing the
  /// batch - exactly as it would not poison a SuiteTxn.
  struct BatchOpResult {
    Status status;
    LookupResult lookup;  ///< Kind::kLookup only.
  };

  /// Overall batch outcome. `status` is the transaction's fate: when it is
  /// not OK (quorum unavailable, deadlock abort) nothing committed and the
  /// per-op results are meaningless.
  struct BatchResult {
    Status status;
    std::vector<BatchOpResult> ops;
  };

  /// Executes `ops` as ONE distributed transaction in (at most) two data
  /// waves: a single batched-lookup round over a read quorum learns every
  /// distinct key's current version, the ops then run in submission order
  /// against that snapshot (later ops observe earlier ops' effects, per-key
  /// version bumps mirror the sequential execution), and one batched-insert
  /// round ships each dirty key's final version+value to a write quorum.
  /// One 2PC finishes it. Round count - and therefore latency - is that of
  /// a single write, independent of the number of operations.
  BatchResult ExecuteBatch(const std::vector<BatchOp>& ops);

  /// Fluent construction of a batch:
  ///   auto r = suite.Batch().Insert("a", "1").Lookup("b").Execute();
  BatchBuilder Batch();

  // --- Introspection ---

  const QuorumConfig& config() const { return options_.config; }
  SuiteStats& stats() { return stats_; }
  const SuiteStats& stats() const { return stats_; }

  /// Data RPCs (lookup/predecessor/successor) sent to each node.
  const std::map<NodeId, std::uint64_t>& read_rpcs_by_node() const {
    return read_rpcs_;
  }
  /// Mutation RPCs (insert/coalesce) sent to each node.
  const std::map<NodeId, std::uint64_t>& write_rpcs_by_node() const {
    return write_rpcs_;
  }

 private:
  friend class SuiteTxn;

  /// Per-transaction context: id, every representative we attempted a data
  /// operation on (all of them must see the 2PC decision, because even a
  /// failed call may have left locks behind), and the delete probes to
  /// record if the transaction commits.
  struct OpCtx {
    explicit OpCtx(TxnId id) : txn(id) {}

    TxnId txn;
    std::set<NodeId> participants;
    std::vector<DeleteProbe> probes;
    bool wrote = false;  ///< Any mutation issued -> full 2PC required.

    /// Optimistic (cache-driven) paths are permitted. Only single-shot
    /// operations set this: a fast path that loses its guard must be
    /// retried in a FRESH transaction (the losing attempt may have applied
    /// partial guarded writes that its own reads would then observe), and
    /// only a single-shot wrapper can do that transparently.
    bool allow_fast = false;
    bool used_fast = false;  ///< An optimistic path was actually taken.

    /// This transaction is a single-shot read-only Lookup, whose inquiry
    /// is its ONLY wave - the precondition for hedging it (a detached
    /// slot's trailing cancel aborts the whole transaction at that node,
    /// which is only safe when no other wave can touch the node). Set
    /// exclusively by DirectorySuite::Lookup.
    bool hedge_ok = false;

    /// Cache updates staged by the operation body. The cache must only
    /// ever hold committed data, so Finish applies these iff the commit
    /// succeeds; an abort just drops them.
    struct CacheAction {
      enum class Kind : std::uint8_t { kPut, kInvalidateRange };
      Kind kind = Kind::kPut;
      RepKey key = RepKey::Low();  ///< kPut target.
      VersionCache::Entry entry;   ///< kPut payload.
      RepKey low = RepKey::Low();  ///< kInvalidateRange bounds...
      RepKey high = RepKey::High();
    };
    std::vector<CacheAction> cache_actions;
  };

  /// Internal suite lookup result: the version is meaningful whether or not
  /// the key is present (entry version vs. gap version) - Fig. 8.
  struct VersionedLookup {
    bool present = false;
    Version version = kLowestVersion;
    Value value;
  };

  /// Result of RealPredecessor / RealSuccessor - Fig. 12.
  struct RealNeighbor {
    RepKey key;
    Value value;
    Version version = kLowestVersion;  ///< Entry version of the neighbor.
    Version max_gap = kLowestVersion;  ///< Largest version seen searching.
  };

  /// One transactional scatter-gather wave (see dir_suite.cc for the
  /// strong/weak accounting contract). Slots [0, strong_count) target
  /// voting quorum members; the rest are best-effort weak representatives.
  template <WireMessage Resp, WireMessage Req>
  net::FanOutResult<Resp> FanOutRep(
      OpCtx& ctx, net::MethodId method,
      const std::vector<net::CallSlot<Req>>& slots, std::size_t strong_count);

  /// Pings nodes along the policy's preference order, a minimal-prefix
  /// wave at a time, until `quota` votes respond; kUnavailable if the
  /// order is exhausted first.
  Result<std::vector<NodeId>> CollectQuorum(OpClass klass);

  /// The minimal voting prefix of the policy's preference order, WITHOUT
  /// the ping wave - the optimistic quorum the cache-driven fast paths
  /// bet on. A member that turns out unreachable surfaces as kUnavailable
  /// from the data wave and the single-shot wrapper re-runs the operation
  /// on the pinged slow path.
  Result<std::vector<NodeId>> OptimisticQuorum(OpClass klass);

  /// Fig. 8: fresh read quorum, highest-version reply wins. When `hint`
  /// carries a cached (presence, version) the inquiry goes out as a
  /// validated read - replicas whose state matches answer "unchanged"
  /// without re-shipping the value - and, if the operation may be
  /// optimistic, the quorum itself skips its ping wave. The (committed)
  /// result is staged for cache application.
  Result<VersionedLookup> SuiteLookup(
      OpCtx& ctx, const RepKey& k,
      const std::optional<VersionCache::Entry>& hint);

  /// Fig. 8 body over an already-collected quorum.
  Result<VersionedLookup> SuiteLookupOn(OpCtx& ctx,
                                        const std::vector<NodeId>& quorum,
                                        const RepKey& k);

  /// Validated-read wave over `quorum`: ships the cached hint, folds
  /// replies highest-version-first, and substitutes the cached value when
  /// the winning reply is an "unchanged" confirmation.
  Result<VersionedLookup> ValidatedLookupOn(OpCtx& ctx,
                                            const std::vector<NodeId>& quorum,
                                            const RepKey& k,
                                            const VersionCache::Entry& hint);

  /// Hedged Fig. 8 inquiry (Options::enable_hedged_reads): primaries are
  /// `quorum` plus the weak hints, spares are the remaining voters in
  /// preference order; the fold takes the highest version among any
  /// R-vote set of successful replies (quorum intersection makes every
  /// such set a legal read quorum). kUnavailable when even the hedge wave
  /// cannot close the quota - the single-shot wrapper then retries on the
  /// pinged, unhedged path.
  Result<VersionedLookup> HedgedLookupOn(OpCtx& ctx,
                                         const std::vector<NodeId>& quorum,
                                         const RepKey& k);

  /// Current hedge delay: p95 of "rpc.method.<kLookup>.latency_us"
  /// clamped to [hedge_delay_floor_us, hedge_delay_cap_us].
  DurationMicros HedgeDelayMicros() const;

  /// Single-round optimistic write: guarded DirRepInsert of
  /// (x, expected+1) to an optimistic write quorum, no read round. A
  /// kVersionMismatch from any voting member proves the cache stale: the
  /// key is invalidated and the status bubbles up for the single-shot
  /// wrapper to fall back on. Only callable when fast_writes_ok_.
  Status FastWriteEntry(OpCtx& ctx, const RepKey& x, Version expected,
                        const Value& value);

  // Cache plumbing; all no-ops when the cache is disabled.
  /// Cached state of `k`, counting a suite-level hit or miss.
  std::optional<VersionCache::Entry> CacheLookup(const RepKey& k);
  void StagePut(OpCtx& ctx, const RepKey& k, VersionCache::Entry entry);
  void StageRangeInvalidation(OpCtx& ctx, const RepKey& low,
                              const RepKey& high);
  /// Applies staged actions to the cache (commit path only).
  void ApplyCacheActions(OpCtx& ctx);

  /// Per-member cache of batched neighbor steps (§4 optimization).
  struct NeighborCursor {
    NodeId node;
    std::vector<NeighborReply> chain;  ///< Walking away from the start key.
    std::size_t idx = 0;
  };

  /// Positions every cursor on its member's local neighbor of `k`
  /// (predecessor when `below`, successor otherwise): advances past cached
  /// entries superseded by deeper candidates, then refills every exhausted
  /// cursor with one parallel batch-fetch wave.
  Status RefillCursors(OpCtx& ctx, std::vector<NeighborCursor>& cursors,
                       const RepKey& k, bool below);

  /// Fig. 12 searches over an already-collected read quorum; every inner
  /// suite inquiry reuses `quorum` rather than collecting a fresh one.
  Result<RealNeighbor> RealPredecessor(OpCtx& ctx,
                                       const std::vector<NodeId>& quorum,
                                       const RepKey& x);
  Result<RealNeighbor> RealSuccessor(OpCtx& ctx,
                                     const std::vector<NodeId>& quorum,
                                     const RepKey& x);

  // Operation bodies, shared by the single-shot API and SuiteTxn.
  /// Fig. 9 write leg shared by Insert and Update: writes (x, version) to a
  /// write quorum plus - best effort - every weak representative, one wave.
  Status WriteEntry(OpCtx& ctx, const RepKey& x, Version version,
                    const Value& value);

  /// Batch body: one batched read wave, sequential application, one
  /// batched write wave. Fills `results` (same length as `ops`).
  Status BatchIn(OpCtx& ctx, const std::vector<BatchOp>& ops,
                 std::vector<BatchOpResult>& results);

  Result<LookupResult> LookupIn(OpCtx& ctx, const UserKey& key);
  Status InsertIn(OpCtx& ctx, const UserKey& key, const Value& value);
  Status UpdateIn(OpCtx& ctx, const UserKey& key, const Value& value);
  Status DeleteIn(OpCtx& ctx, const UserKey& key);
  Result<NextKeyResult> NextKeyIn(OpCtx& ctx, const RepKey& from);

  /// Commits (2PC) or aborts `ctx` based on `body_status`; on commit,
  /// records the accumulated delete probes.
  Status Finish(OpCtx& ctx, Status body_status);

  /// Runs `body` in a fresh transaction and finishes it, under a
  /// "suite.<op_name>" trace span and a "suite.op.<op_name>_us" latency
  /// sample. `allow_fast` arms the optimistic cache paths for this
  /// attempt; `used_fast` (optional) reports whether one was taken.
  template <typename Fn>
  Status RunTxn(const char* op_name, bool allow_fast, bool* used_fast,
                Fn&& body);

  /// Single-shot wrapper: runs `body` optimistically first; if an
  /// optimistic attempt fails with kVersionMismatch (stale cache) or
  /// kUnavailable (unpinged member down), re-runs read-then-write in a
  /// fresh transaction. The first attempt's abort rolled back any partial
  /// guarded writes, so the retry observes only committed state.
  template <typename Fn>
  Status RunTxnCached(const char* op_name, Fn&& body);

  /// Folds a finished operation's status into the counters; `mirror` is
  /// the registry counter paired with `counter` ("suite.ops.*").
  Status Record(Status st, std::uint64_t OpCounters::*counter,
                Counter* mirror);

  /// Registry name of a suite metric: "suite." + (metric_scope + ".")? +
  /// suffix. Every suite counter/latency name goes through here so a
  /// sharded deployment gets per-shard breakouts for free.
  std::string Metric(const char* suffix) const { return scope_ + suffix; }

  net::RpcClient client_;
  Options options_;
  std::string scope_;  ///< Metric name prefix ("suite." or "suite.<id>.").
  std::vector<NodeId> weak_nodes_;
  std::unique_ptr<QuorumPolicy> policy_;
  txn::TxnIdFactory own_txn_ids_;
  txn::TxnIdFactory* txn_ids_;  ///< Options::txn_ids or &own_txn_ids_.
  txn::TwoPhaseCommitter committer_;
  MetricsRegistry* metrics_ = nullptr;  ///< == &client_.metrics().
  TraceSink* trace_ = nullptr;
  SuiteStats stats_;
  std::map<NodeId, std::uint64_t> read_rpcs_;
  std::map<NodeId, std::uint64_t> write_rpcs_;

  /// Null when Options::enable_version_cache is off.
  std::unique_ptr<VersionCache> cache_;
  /// 2W > V: write quorums pairwise intersect, so a guarded write that
  /// races a committed conflicting write is guaranteed to meet a member
  /// whose version exceeds its expectation. Without this the read round
  /// is what serializes writers and must not be skipped.
  bool fast_writes_ok_ = false;
  Counter* cache_hits_ = nullptr;          ///< "suite.cache.hits".
  Counter* cache_misses_ = nullptr;        ///< "suite.cache.misses".
  Counter* cache_invalidations_ = nullptr; ///< "suite.cache.invalidations".
  Counter* fast_path_writes_ = nullptr;    ///< "suite.write.fast_path".
  Counter* validated_reads_ = nullptr;     ///< "suite.read.validated".
  Counter* cache_fallbacks_ = nullptr;     ///< "suite.cache.fallbacks".
  Counter* stale_reads_ = nullptr;         ///< "suite.read.stale".
  Counter* stale_fallbacks_ = nullptr;     ///< "suite.read.stale_fallbacks".
};

/// The name tests and tools use for suite construction options.
using SuiteOptions = DirectorySuite::Options;

/// A multi-operation atomic transaction over a directory suite (§3.1).
///
///   auto txn = suite.Begin();
///   auto from = txn.Lookup("payer");
///   ... txn.Update("payer", debit), txn.Update("payee", credit) ...
///   Status st = txn.Commit();   // all-or-nothing
///
/// All operations see the transaction's own writes, hold their locks until
/// the decision (strict 2PL), and either all commit or none do. A SuiteTxn
/// that is destroyed without Commit() aborts. Not movable across threads.
class SuiteTxn {
 public:
  ~SuiteTxn() {
    if (open_) Abort();
  }

  SuiteTxn(SuiteTxn&& other) noexcept
      : suite_(other.suite_), ctx_(std::move(other.ctx_)),
        open_(other.open_) {
    other.open_ = false;
  }
  SuiteTxn& operator=(SuiteTxn&&) = delete;
  SuiteTxn(const SuiteTxn&) = delete;
  SuiteTxn& operator=(const SuiteTxn&) = delete;

  Result<DirectorySuite::LookupResult> Lookup(const UserKey& key);
  Status Insert(const UserKey& key, const Value& value);
  Status Update(const UserKey& key, const Value& value);
  Status Delete(const UserKey& key);
  Result<DirectorySuite::NextKeyResult> NextKey(const UserKey& key);

  /// Runs a whole op batch inside THIS transaction (same wave collapse as
  /// DirectorySuite::ExecuteBatch, but the caller owns commit/abort - the
  /// chaos executor uses this to keep its coordinator decision map).
  /// A hard failure aborts the transaction, exactly like the ops above.
  Result<std::vector<DirectorySuite::BatchOpResult>> ExecuteBatch(
      const std::vector<DirectorySuite::BatchOp>& ops);

  /// Two-phase-commits everything; the handle is finished afterwards.
  Status Commit();

  /// Rolls everything back; the handle is finished afterwards.
  void Abort();

  /// Finishes the handle WITHOUT a 2PC decision and returns the
  /// participant set for an external coordinator to prepare/commit/abort.
  /// Locks stay held on every participant until that decision lands.
  /// Staged cache updates and delete probes are deliberately dropped - the
  /// suite cannot observe the external outcome, and a cache may only ever
  /// hold committed data.
  DirectorySuite::Handoff Detach();

  bool open() const { return open_; }
  TxnId id() const { return ctx_.txn; }

 private:
  friend class DirectorySuite;
  explicit SuiteTxn(DirectorySuite& suite)
      : suite_(&suite), ctx_(suite.txn_ids_->Next()) {}
  SuiteTxn(DirectorySuite& suite, TxnId txn) : suite_(&suite), ctx_(txn) {}

  Status Guard() const {
    return open_ ? Status::Ok()
                 : Status::FailedPrecondition("transaction already finished");
  }

  DirectorySuite* suite_;
  DirectorySuite::OpCtx ctx_;
  bool open_ = true;
};

/// Accumulates operations for one DirectorySuite::ExecuteBatch call.
class BatchBuilder {
 public:
  BatchBuilder& Lookup(UserKey key) {
    ops_.push_back({DirectorySuite::BatchOp::Kind::kLookup, std::move(key),
                    Value{}});
    return *this;
  }
  BatchBuilder& Insert(UserKey key, Value value) {
    ops_.push_back({DirectorySuite::BatchOp::Kind::kInsert, std::move(key),
                    std::move(value)});
    return *this;
  }
  BatchBuilder& Update(UserKey key, Value value) {
    ops_.push_back({DirectorySuite::BatchOp::Kind::kUpdate, std::move(key),
                    std::move(value)});
    return *this;
  }

  std::size_t size() const { return ops_.size(); }

  /// Executes everything accumulated so far; the builder may be reused.
  DirectorySuite::BatchResult Execute() {
    return suite_->ExecuteBatch(ops_);
  }

 private:
  friend class DirectorySuite;
  explicit BatchBuilder(DirectorySuite& suite) : suite_(&suite) {}

  DirectorySuite* suite_;
  std::vector<DirectorySuite::BatchOp> ops_;
};

}  // namespace repdir::rep
