#include "rep/shard_map.h"

#include <set>
#include <utility>

namespace repdir::rep {

std::size_t ShardMap::OwnerIndex(const UserKey& key) const {
  // Last entry with low <= key. entries[0].low == "" guarantees a match.
  std::size_t lo = 0;
  std::size_t hi = entries.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (entries[mid].low <= key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

const ShardEntry* ShardMap::Find(ShardId shard) const {
  for (const auto& e : entries) {
    if (e.shard == shard) return &e;
  }
  return nullptr;
}

const StagingShard* ShardMap::FindStaging(ShardId shard) const {
  for (const auto& s : staging) {
    if (s.shard == shard) return &s;
  }
  return nullptr;
}

Status ShardMap::Validate() const {
  if (entries.empty()) {
    return Status::InvalidArgument("shard map has no entries");
  }
  if (!entries[0].low.empty()) {
    return Status::InvalidArgument(
        "first shard must start at the keyspace origin (low == \"\")");
  }
  std::set<ShardId> ids;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const ShardEntry& e = entries[i];
    if (i > 0 && entries[i - 1].low >= e.low) {
      return Status::InvalidArgument("shard range starts not increasing");
    }
    if (!ids.insert(e.shard).second) {
      return Status::InvalidArgument("duplicate shard id " +
                                     std::to_string(e.shard));
    }
    REPDIR_RETURN_IF_ERROR(e.config.Validate());
    if (e.migrating && Find(e.migrate_to) == nullptr &&
        FindStaging(e.migrate_to) == nullptr) {
      return Status::InvalidArgument("migration target shard " +
                                     std::to_string(e.migrate_to) +
                                     " not in map");
    }
  }
  for (const auto& s : staging) {
    if (!ids.insert(s.shard).second) {
      return Status::InvalidArgument("duplicate shard id " +
                                     std::to_string(s.shard));
    }
    REPDIR_RETURN_IF_ERROR(s.config.Validate());
  }
  return Status::Ok();
}

std::string ShardMap::ToString() const {
  std::string out = "v" + std::to_string(version) + ":";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const ShardEntry& e = entries[i];
    out += " shard" + std::to_string(e.shard) + "=[" + e.low + ",";
    UserKey high;
    if (HighBound(i, &high)) out += high;
    out += ")";
    if (e.migrating) {
      out += "~>" + std::to_string(e.migrate_to);
    }
  }
  for (const auto& s : staging) {
    out += " staging{shard" + std::to_string(s.shard) + "}";
  }
  return out;
}

Status ShardMapAuthority::Install(ShardMap map) {
  REPDIR_RETURN_IF_ERROR(map.Validate());
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t current = map_ == nullptr ? 0 : map_->version;
  if (map.version <= current) {
    return Status::VersionMismatch(
        "shard map version " + std::to_string(map.version) +
        " does not exceed installed version " + std::to_string(current));
  }
  map_ = std::make_shared<const ShardMap>(std::move(map));
  return Status::Ok();
}

ShardMap SingleShardMap(ShardId shard, QuorumConfig config,
                        std::uint64_t version) {
  ShardMap map;
  map.version = version;
  ShardEntry entry;
  entry.shard = shard;
  entry.config = std::move(config);
  map.entries.push_back(std::move(entry));
  return map;
}

}  // namespace repdir::rep
