// Anti-entropy reconciliation: digest-driven replica repair.
//
// Quorum operations keep the SUITE correct while individual representatives
// drift: a replica that misses writes (crash, partition, weak/zero-vote
// member) serves stale versions until some operation happens to overwrite
// them, and ghosts - entries superseded by a committed higher-version gap -
// accumulate on members that missed the delete's coalesce. The Reconciler
// repairs a lagging representative directly against a current one:
//
//   1. Digest walk: the source splits a segment (low, high] into at most
//      `fanout` children cut at its own entry keys (kRangeDigest) and the
//      target digests the same spans (kRangeDigestSpans). Matching digests
//      prune the subtree; mismatches recurse until a segment holds at most
//      `leaf_entries` source entries.
//   2. Repair: for each mismatched leaf, one repair transaction fetches the
//      full segment from both replicas under read locks (kFetchRange,
//      strict 2PL - the plan stays valid until the 2PC decision), then
//        * installs source entries the target lacks via guarded inserts
//          (expected = source version, so a newer target version is never
//          regressed and a concurrent committed write wins);
//        * coalesces each source gap span to its committed gap version,
//          erasing target ghosts (entries older than that committed gap)
//          and bumping stale gap pieces - skipping any sub-span where the
//          target already knows a NEWER gap (the target is ahead there);
//      and finishes with one two-phase commit over {source, target}.
//
// Repairs only ever move the target FORWARD to committed state, so
// reconciliation is idempotent and safe to run concurrently with live
// traffic: every mutation rides ordinary participant operations under the
// ordinary locking protocol. Guarded inserts respect shard ownership
// (kWrongShard skips the key and its adjacent spans), so a reconciler
// racing an online split never re-spreads a retiring range.
//
// SyncReplica folds sources into a target until the folded votes (including
// the target's own) reach the read quorum R: afterwards, for every key the
// target's version is at least the maximum over some read quorum at sync
// time - which is what makes single-replica reads of a freshly reconciled
// (even zero-vote) member trustworthy up to that staleness bound (see
// SuiteOptions::enable_stale_reads).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "net/retry.h"
#include "net/rpc_client.h"
#include "rep/messages.h"
#include "rep/quorum.h"
#include "txn/coordinator.h"
#include "txn/txn_id.h"

namespace repdir::rep {

/// Cumulative effect counters of one Reconciler instance. Mutation counts
/// (entries_installed, ghosts_collected, gap_bumps, skipped_newer) are
/// staged per repair transaction and folded in only when its commit
/// succeeds, so they count exactly what took effect.
struct ReconcileStats {
  std::uint64_t runs = 0;              ///< RunOnce invocations.
  std::uint64_t pairs_synced = 0;      ///< Source->target walks completed.
  std::uint64_t pair_errors = 0;       ///< Walks that failed or left damage.
  std::uint64_t replicas_failed = 0;   ///< SyncReplica calls short of R.
  std::uint64_t ranges_checked = 0;    ///< Digest pairs compared.
  std::uint64_t ranges_mismatched = 0; ///< ... of which differed.
  std::uint64_t repair_txns = 0;       ///< Repair transactions started.
  std::uint64_t repair_aborts = 0;     ///< ... of which aborted.
  std::uint64_t entries_installed = 0; ///< Entries copied to targets.
  std::uint64_t ghosts_collected = 0;  ///< Ghost entries erased.
  std::uint64_t gap_bumps = 0;         ///< Coalesces that advanced a gap.
  std::uint64_t skipped_newer = 0;     ///< Keys/spans where target was ahead.
  std::uint64_t digest_bytes = 0;      ///< Wire bytes of the digest walk.
  std::uint64_t repair_bytes = 0;      ///< Wire bytes of fetch + repair.
};

/// Pure state machine that adapts the background anti-entropy cadence to
/// observed drift. A pass whose stats deltas show the repair leg found work
/// (mismatched ranges, repaired entries, or errors suggesting damage is
/// still out there) tightens the interval multiplicatively; a no-op pass
/// backs off exponentially, so a quiescent suite converges to
/// max_interval_us and a churning one to min_interval_us. Deliberately
/// time-free (it consumes pass outcomes, not timestamps), so unit tests
/// drive it deterministically with synthetic ReconcileStats deltas.
class ReconcileIntervalPolicy {
 public:
  struct Options {
    DurationMicros min_interval_us = 50'000;
    DurationMicros initial_interval_us = 1'000'000;
    DurationMicros max_interval_us = 60'000'000;
    double tighten_factor = 0.5;  ///< Applied when a pass found work.
    double backoff_factor = 2.0;  ///< Applied on a no-op pass.
  };

  ReconcileIntervalPolicy() : ReconcileIntervalPolicy(Options()) {}
  explicit ReconcileIntervalPolicy(Options options)
      : options_(options), current_(Clamp(static_cast<double>(
                               options.initial_interval_us))) {}

  DurationMicros current() const { return current_; }
  const Options& options() const { return options_; }

  /// Whether the stats movement between two snapshots means the pass found
  /// repair work (or evidence of unrepaired damage - failed pairs/replicas
  /// keep the cadence tight until a pass gets through cleanly).
  static bool FoundWork(const ReconcileStats& before,
                        const ReconcileStats& after) {
    return after.ranges_mismatched != before.ranges_mismatched ||
           after.entries_installed != before.entries_installed ||
           after.ghosts_collected != before.ghosts_collected ||
           after.gap_bumps != before.gap_bumps ||
           after.pair_errors != before.pair_errors ||
           after.replicas_failed != before.replicas_failed;
  }

  /// Folds one completed pass in and returns the next interval.
  DurationMicros OnPass(bool found_work) {
    const double factor = found_work ? options_.tighten_factor
                                     : options_.backoff_factor;
    current_ = Clamp(static_cast<double>(current_) * factor);
    return current_;
  }

 private:
  DurationMicros Clamp(double interval) const {
    const double lo = static_cast<double>(options_.min_interval_us);
    const double hi = static_cast<double>(options_.max_interval_us);
    return static_cast<DurationMicros>(std::min(hi, std::max(lo, interval)));
  }

  Options options_;
  DurationMicros current_;
};

/// Background repair driver for one suite's representatives. One instance
/// is a single client (distinct node id from every representative and every
/// other client); drive it from one thread at a time.
class Reconciler {
 public:
  struct Options {
    /// Children per digest split. Higher fan-out prunes deeper per round
    /// trip but ships more digests per message.
    std::uint32_t fanout = 8;

    /// A mismatched segment with at most this many source entries is
    /// repaired directly instead of split further.
    std::uint64_t leaf_entries = 32;

    /// Digest recursion backstop.
    std::uint32_t max_depth = 64;

    /// Retry policy of the 2PC control waves (prepare/commit/abort).
    net::RetryPolicy rpc_retry{1};

    /// Registry for the "suite[.<scope>].reconcile.*" counters; null means
    /// the process-wide default.
    MetricsRegistry* metrics = nullptr;

    /// Same scoping rule as SuiteOptions::metric_scope.
    std::string metric_scope;

    /// Invoked after every repair transaction's decision: (txn, true) on
    /// commit, (txn, false) on abort. Chaos harnesses feed their
    /// coordinator decision map with this.
    std::function<void(TxnId, bool)> decision_hook;

    /// Shared transaction-id factory (see SuiteOptions::txn_ids); null:
    /// private factory seeded by the client node id.
    txn::TxnIdFactory* txn_ids = nullptr;
  };

  Reconciler(net::Transport& transport, NodeId client_node,
             QuorumConfig config, Options options);
  Reconciler(net::Transport& transport, NodeId client_node,
             QuorumConfig config)
      : Reconciler(transport, client_node, std::move(config), Options()) {}

  /// Walks the whole keyspace of `source` against `target`, repairing every
  /// mismatched leaf segment. OK means the walk completed and every repair
  /// committed - the target now holds, for every key, a version at least as
  /// new as the source held at walk time (except where the target's shard
  /// bounds refused a key). Digest failures stop the walk; a failed repair
  /// transaction is skipped (counted) and the walk continues, but the pair
  /// then reports kAborted.
  Status SyncPair(NodeId source, NodeId target);

  /// Folds sources into `target` (voting members first, in config order)
  /// until the synced votes - counting the target's own - reach the read
  /// quorum; kUnavailable if the members are exhausted first.
  Status SyncReplica(NodeId target);

  /// One full anti-entropy pass: SyncReplica for every representative,
  /// weak members included. Best-effort - per-replica failures are counted
  /// in stats().replicas_failed, and the pass itself always completes.
  Status RunOnce();

  /// Shard-map version stamped into outgoing envelopes (see
  /// DirectorySuite::set_shard_epoch). 0 disables the fence.
  void set_shard_epoch(std::uint64_t epoch) { client_.set_shard_epoch(epoch); }

  const ReconcileStats& stats() const { return stats_; }
  const QuorumConfig& config() const { return config_; }

 private:
  /// One repair transaction over segment (low, high] of {source, target}.
  Status RepairSegment(NodeId source, NodeId target,
                       const storage::RepKey& low,
                       const storage::RepKey& high);

  QuorumConfig config_;
  Options options_;
  net::RpcClient client_;
  txn::TxnIdFactory own_txn_ids_;
  txn::TxnIdFactory* txn_ids_;  ///< Options::txn_ids or &own_txn_ids_.
  txn::TwoPhaseCommitter committer_;
  ReconcileStats stats_;
  std::string scope_;  ///< "suite.reconcile." or "suite.<id>.reconcile.".

  Counter* runs_;
  Counter* pairs_synced_;
  Counter* pair_errors_;
  Counter* ranges_checked_;
  Counter* ranges_mismatched_;
  Counter* repair_txns_;
  Counter* repair_aborts_;
  Counter* entries_installed_;
  Counter* ghosts_collected_;
  Counter* gap_bumps_;
  Counter* skipped_newer_;
  Counter* digest_bytes_;
  Counter* repair_bytes_;
};

/// Periodic RunOnce driver on a private thread. Construction starts the
/// loop; Stop() (or destruction) joins it. The wrapped Reconciler must not
/// be driven from other threads while the loop runs; read its stats after
/// Stop() (the registry counters are safe to read any time).
///
/// The fixed-interval constructor sleeps `interval_micros` between passes.
/// The adaptive constructor instead feeds each pass's ReconcileStats deltas
/// into a ReconcileIntervalPolicy: passes that found drift tighten the
/// cadence, no-op passes back off exponentially (current cadence readable
/// via current_interval_micros()).
class BackgroundReconciler {
 public:
  BackgroundReconciler(Reconciler& reconciler, DurationMicros interval_micros);
  BackgroundReconciler(Reconciler& reconciler,
                       ReconcileIntervalPolicy policy);
  ~BackgroundReconciler() { Stop(); }

  BackgroundReconciler(const BackgroundReconciler&) = delete;
  BackgroundReconciler& operator=(const BackgroundReconciler&) = delete;

  void Stop();

  /// The sleep the loop will take before the next pass.
  DurationMicros current_interval_micros() const;

 private:
  void Loop();

  Reconciler* reconciler_;
  bool adaptive_ = false;
  ReconcileIntervalPolicy policy_;    ///< Meaningful when adaptive_.
  ReconcileStats last_stats_;         ///< Snapshot after the previous pass.
  mutable std::mutex mu_;
  DurationMicros interval_micros_;    ///< Guarded by mu_ when adaptive_.
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace repdir::rep
