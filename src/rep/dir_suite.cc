#include "rep/dir_suite.h"

#include <algorithm>
#include <cassert>

#include "rep/adaptive_policy.h"

namespace repdir::rep {

namespace {

constexpr txn::TxnControlMethods kTxnMethods{kPrepare, kCommit, kAbortTxn};

bool IsReadMethod(net::MethodId m) {
  return m == kLookup || m == kLookupValidated || m == kLookupBatch ||
         m == kPredecessor || m == kSuccessor || m == kPredecessorBatch ||
         m == kSuccessorBatch;
}

/// Operation failures that leave no partial state and therefore do not
/// force a multi-operation transaction to abort.
bool IsCleanCheckFailure(const Status& st) {
  return st.code() == StatusCode::kNotFound ||
         st.code() == StatusCode::kAlreadyExists;
}

/// The first failure, in slot order, among a wave's strong slots. Strong
/// quorum calls are all-or-nothing for the operation, and reporting the
/// lowest failed slot matches what the sequential walk would have returned.
template <WireMessage Resp>
Status FirstStrongError(const net::FanOutResult<Resp>& fan,
                        std::size_t strong_count) {
  const std::size_t strong_issued = std::min(fan.issued, strong_count);
  for (std::size_t i = 0; i < strong_issued; ++i) {
    REPDIR_RETURN_IF_ERROR(fan.replies[i]->status());
  }
  return Status::Ok();
}

}  // namespace

DirectorySuite::DirectorySuite(net::Transport& transport, NodeId client_node,
                               Options options)
    : client_(transport, client_node, options.metrics),
      options_(std::move(options)),
      own_txn_ids_(client_node),
      txn_ids_(options_.txn_ids != nullptr ? options_.txn_ids : &own_txn_ids_),
      committer_(client_, kTxnMethods, options_.rpc_retry) {
  assert(options_.config.Validate().ok() && "invalid quorum configuration");
  scope_ = options_.metric_scope.empty()
               ? "suite."
               : "suite." + options_.metric_scope + ".";
  metrics_ = &client_.metrics();
  trace_ = options_.trace != nullptr ? options_.trace : &TraceSink::Default();
  weak_nodes_ = options_.config.WeakNodes();
  if (options_.enable_adaptive_policy || options_.enable_hedged_reads) {
    if (options_.scoreboard == nullptr) {
      options_.scoreboard = std::make_shared<net::NodeScoreboard>(metrics_);
    }
    client_.set_scoreboard(options_.scoreboard);
  }
  if (options_.policy != nullptr) {
    policy_ = std::move(options_.policy);
  } else if (options_.enable_adaptive_policy) {
    policy_ = std::make_unique<AdaptiveQuorumPolicy>(
        options_.config, options_.scoreboard, options_.policy_seed);
  } else {
    policy_ = std::make_unique<RandomQuorumPolicy>(options_.config,
                                                   options_.policy_seed);
  }
  if (options_.enable_version_cache) {
    cache_ = std::make_unique<VersionCache>(options_.version_cache_capacity);
    // Guarded writes skip the read round, so write-write intersection must
    // come from the quorums themselves (2W > V). Configurations that rely
    // on read-then-write for serialization (the repo allows them - see
    // quorum.h) keep the cache for validated reads only.
    fast_writes_ok_ =
        2 * options_.config.write_quorum() > options_.config.TotalVotes();
  }
  cache_hits_ = &metrics_->counter(Metric("cache.hits"));
  cache_misses_ = &metrics_->counter(Metric("cache.misses"));
  cache_invalidations_ = &metrics_->counter(Metric("cache.invalidations"));
  fast_path_writes_ = &metrics_->counter(Metric("write.fast_path"));
  validated_reads_ = &metrics_->counter(Metric("read.validated"));
  cache_fallbacks_ = &metrics_->counter(Metric("cache.fallbacks"));
  stale_reads_ = &metrics_->counter(Metric("read.stale"));
  stale_fallbacks_ = &metrics_->counter(Metric("read.stale_fallbacks"));
}

template <WireMessage Resp, WireMessage Req>
net::FanOutResult<Resp> DirectorySuite::FanOutRep(
    OpCtx& ctx, net::MethodId method,
    const std::vector<net::CallSlot<Req>>& slots, std::size_t strong_count) {
  net::FanOutOptions fan_options;
  fan_options.retry = options_.rpc_retry;
  net::FanOutResult<Resp> fan =
      client_.ParallelCall<Resp>(slots, method, ctx.txn, fan_options);

  // Accounting happens post-hoc on the issuing thread, over the finished
  // wave: exact, reproducible, and no locking of the suite's counters.
  //
  // Strong slots enroll as 2PC participants unconditionally - even a
  // failed call may have executed server-side (response lost), leaving
  // locks behind, so the node must learn the transaction's outcome. Weak
  // slots are best-effort: an unreachable hint node must NOT enroll (it
  // would fail PREPARE and abort the whole transaction), but gets a
  // best-effort abort in case the request executed and the reply was lost.
  const bool is_read = IsReadMethod(method);
  auto& rpcs = is_read ? read_rpcs_ : write_rpcs_;
  for (std::size_t i = 0; i < fan.issued; ++i) {
    const NodeId node = slots[i].to;
    ++rpcs[node];
    const Result<Resp>& reply = *fan.replies[i];
    const bool executed =
        reply.ok() || reply.status().code() != StatusCode::kUnavailable;
    if (i < strong_count || executed) {
      ctx.participants.insert(node);
      if (!is_read) ctx.wrote = true;
    } else {
      (void)client_.Call<net::Empty>(node, kAbortTxn, net::Empty{}, ctx.txn);
    }
  }
  return fan;
}

Result<std::vector<NodeId>> DirectorySuite::CollectQuorum(OpClass klass) {
  const Votes quota = klass == OpClass::kRead ? options_.config.read_quorum()
                                              : options_.config.write_quorum();
  const std::vector<NodeId> order = policy_->PreferenceOrder(klass);
  std::vector<NodeId> voters;
  voters.reserve(order.size());
  for (const NodeId node : order) {
    if (options_.config.VotesOf(node) > 0) voters.push_back(node);  // weak: no votes
  }

  // Ping in minimal-prefix waves: each wave is the shortest prefix of the
  // remaining preference order whose votes would close the quota if every
  // ping succeeds. When all members are up (the common case) this sends
  // exactly the pings the sequential walk would - one round-trip of latency
  // instead of one per member - and under failures both schemes ping the
  // same prefix of the preference order, so message counts stay identical.
  net::FanOutOptions ping_options;
  ping_options.retry = options_.rpc_retry;
  std::vector<NodeId> members;
  Votes votes = 0;
  std::size_t next = 0;
  while (votes < quota && next < voters.size()) {
    std::vector<NodeId> wave;
    Votes wave_votes = 0;
    while (next < voters.size() && votes + wave_votes < quota) {
      wave.push_back(voters[next]);
      wave_votes += options_.config.VotesOf(voters[next]);
      ++next;
    }
    const auto pings = client_.ParallelCall<net::Empty>(
        wave, kPing, net::Empty{}, kInvalidTxn, ping_options);
    for (std::size_t i = 0; i < pings.issued; ++i) {
      if (!pings.replies[i]->ok()) continue;  // unreachable: next preference
      members.push_back(wave[i]);
      votes += options_.config.VotesOf(wave[i]);
    }
  }
  if (votes >= quota) {
    metrics_
        ->distribution(Metric(klass == OpClass::kRead ? "quorum.read_size"
                                                      : "quorum.write_size"))
        .Record(static_cast<double>(members.size()));
    return members;
  }
  return Status::Unavailable(
      std::string(klass == OpClass::kRead ? "read" : "write") +
      " quorum unavailable (" + std::to_string(votes) + "/" +
      std::to_string(quota) + " votes)");
}

Result<std::vector<NodeId>> DirectorySuite::OptimisticQuorum(OpClass klass) {
  // The same minimal prefix CollectQuorum would ping when everyone is up,
  // taken on faith: zero ping rounds, and the data wave itself is the
  // availability probe. Losing the bet costs one aborted attempt (the
  // single-shot wrapper re-runs on the pinged path), which the cache's
  // target regime - healthy quorums, repeated keys - makes rare.
  const Votes quota = klass == OpClass::kRead ? options_.config.read_quorum()
                                              : options_.config.write_quorum();
  const std::vector<NodeId> order = policy_->PreferenceOrder(klass);
  std::vector<NodeId> members;
  Votes votes = 0;
  for (const NodeId node : order) {
    const Votes v = options_.config.VotesOf(node);
    if (v == 0) continue;  // weak: no votes
    members.push_back(node);
    votes += v;
    if (votes >= quota) break;
  }
  if (votes < quota) {
    return Status::Unavailable(
        std::string(klass == OpClass::kRead ? "read" : "write") +
        " quorum unattainable (" + std::to_string(votes) + "/" +
        std::to_string(quota) + " votes)");
  }
  metrics_
      ->distribution(Metric(klass == OpClass::kRead ? "quorum.read_size"
                                                    : "quorum.write_size"))
      .Record(static_cast<double>(members.size()));
  return members;
}

Result<DirectorySuite::VersionedLookup> DirectorySuite::SuiteLookup(
    OpCtx& ctx, const RepKey& k,
    const std::optional<VersionCache::Entry>& hint) {
  std::vector<NodeId> quorum;
  bool hedged = false;
  if (hint.has_value() && ctx.allow_fast) {
    ctx.used_fast = true;
    REPDIR_ASSIGN_OR_RETURN(quorum, OptimisticQuorum(OpClass::kRead));
  } else if (options_.enable_hedged_reads && ctx.hedge_ok && ctx.allow_fast) {
    // Hedged inquiry: optimistic quorum, no ping round - the hedge wave IS
    // the failure handling. Losing the bet (quota unclosable even hedged)
    // surfaces as kUnavailable and used_fast sends the single-shot wrapper
    // back through the pinged slow path, like any optimistic miss.
    hedged = true;
    ctx.used_fast = true;
    REPDIR_ASSIGN_OR_RETURN(quorum, OptimisticQuorum(OpClass::kRead));
  } else {
    REPDIR_ASSIGN_OR_RETURN(quorum, CollectQuorum(OpClass::kRead));
  }
  Result<VersionedLookup> out =
      hint.has_value() ? ValidatedLookupOn(ctx, quorum, k, *hint)
      : hedged         ? HedgedLookupOn(ctx, quorum, k)
                       : SuiteLookupOn(ctx, quorum, k);
  if (out.ok() && cache_ != nullptr) {
    VersionCache::Entry fresh;
    fresh.present = out->present;
    fresh.version = out->version;
    fresh.value = out->value;
    StagePut(ctx, k, std::move(fresh));
  }
  return out;
}

Result<DirectorySuite::VersionedLookup> DirectorySuite::SuiteLookupOn(
    OpCtx& ctx, const std::vector<NodeId>& quorum, const RepKey& k) {
  // Fig. 8 as a single wave: inquiries to the strong quorum (each reply
  // required) and to the weak representatives (§2 "hints", best-effort)
  // fan out together. The reply with the largest version number is
  // current; weak replies can only be folded in safely - all of their data
  // was written by committed transactions, so the highest-version rule
  // still selects current data. (A strict tie between "present" and "not
  // present" cannot occur - see the version-invariant tests - but we
  // prefer "present" defensively.)
  std::vector<net::CallSlot<KeyRequest>> slots;
  slots.reserve(quorum.size() + weak_nodes_.size());
  for (const NodeId node : quorum) slots.push_back({node, KeyRequest{k}});
  for (const NodeId node : weak_nodes_) slots.push_back({node, KeyRequest{k}});
  const auto fan = FanOutRep<LookupReply>(ctx, kLookup, slots, quorum.size());
  REPDIR_RETURN_IF_ERROR(FirstStrongError(fan, quorum.size()));

  VersionedLookup best;  // present=false, version=LowestVersion
  bool first = true;
  for (std::size_t i = 0; i < fan.issued; ++i) {
    const Result<LookupReply>& reply = *fan.replies[i];
    if (!reply.ok()) continue;  // weak miss: best-effort
    const bool better =
        first || reply->version > best.version ||
        (reply->version == best.version && reply->present && !best.present);
    if (better) {
      best.present = reply->present;
      best.version = reply->version;
      best.value = reply->value;
      first = false;
    }
  }
  return best;
}

Result<DirectorySuite::VersionedLookup> DirectorySuite::ValidatedLookupOn(
    OpCtx& ctx, const std::vector<NodeId>& quorum, const RepKey& k,
    const VersionCache::Entry& hint) {
  // Fig. 8 with the cached (presence, version) riding along: members whose
  // state matches the hint reply "unchanged" with the value elided. The
  // highest-version fold is unchanged - an "unchanged" reply still carries
  // its version - and only if the WINNING reply is a confirmation does the
  // cached value stand in for the elided one.
  std::vector<net::CallSlot<ValidatedLookupRequest>> slots;
  slots.reserve(quorum.size() + weak_nodes_.size());
  const ValidatedLookupRequest req{k, true, hint.present, hint.version};
  for (const NodeId node : quorum) slots.push_back({node, req});
  for (const NodeId node : weak_nodes_) slots.push_back({node, req});
  const auto fan = FanOutRep<ValidatedLookupReply>(ctx, kLookupValidated,
                                                   slots, quorum.size());
  REPDIR_RETURN_IF_ERROR(FirstStrongError(fan, quorum.size()));

  VersionedLookup best;
  bool first = true;
  bool best_unchanged = false;
  for (std::size_t i = 0; i < fan.issued; ++i) {
    const Result<ValidatedLookupReply>& reply = *fan.replies[i];
    if (!reply.ok()) continue;  // weak miss: best-effort
    const LookupReply& data = reply->data;
    const bool better =
        first || data.version > best.version ||
        (data.version == best.version && data.present && !best.present);
    if (better) {
      best.present = data.present;
      best.version = data.version;
      best.value = data.value;
      best_unchanged = reply->unchanged;
      first = false;
    }
  }
  if (best_unchanged) {
    best.value = hint.value;
    ++stats_.counters().validated_reads;
    validated_reads_->Increment();
  }
  return best;
}

DurationMicros DirectorySuite::HedgeDelayMicros() const {
  // The per-method latency distribution the RpcClient already records is
  // the straggler detector: waiting past its p95 means this wave is slower
  // than 19 of 20 recent lookups. Until enough samples exist the floor
  // stands in.
  DistributionStat& lat = metrics_->distribution(
      "rpc.method." + std::to_string(static_cast<int>(kLookup)) +
      ".latency_us");
  double delay = static_cast<double>(options_.hedge_delay_floor_us);
  if (lat.count() >= 16) {
    delay = std::max(delay, static_cast<double>(lat.ApproxQuantile(0.95)));
  }
  return static_cast<DurationMicros>(std::min(
      delay, static_cast<double>(options_.hedge_delay_cap_us)));
}

Result<DirectorySuite::VersionedLookup> DirectorySuite::HedgedLookupOn(
    OpCtx& ctx, const std::vector<NodeId>& quorum, const RepKey& k) {
  // Primaries: the optimistic quorum plus the weak hints (matching the
  // unhedged wave shape). Spares: every remaining voter, config order.
  std::vector<net::CallSlot<KeyRequest>> slots;
  std::vector<NodeId> nodes;
  slots.reserve(quorum.size() + weak_nodes_.size());
  for (const NodeId node : quorum) {
    slots.push_back({node, KeyRequest{k}});
    nodes.push_back(node);
  }
  for (const NodeId node : weak_nodes_) {
    slots.push_back({node, KeyRequest{k}});
    nodes.push_back(node);
  }
  const std::size_t primary_count = slots.size();
  for (const NodeId node : options_.config.Nodes()) {
    if (options_.config.VotesOf(node) == 0) continue;
    if (std::find(quorum.begin(), quorum.end(), node) != quorum.end()) {
      continue;
    }
    slots.push_back({node, KeyRequest{k}});
    nodes.push_back(node);
  }

  // Quota: any R votes' worth of successful replies is a legal read quorum
  // (R + W > V intersects it with every write quorum), so the first set to
  // close the quota wins and stragglers need not be awaited.
  const Votes quota = options_.config.read_quorum();
  const QuorumConfig& config = options_.config;
  auto quota_fn =
      [&config, nodes,
       quota](const std::vector<std::optional<Result<LookupReply>>>& replies) {
        Votes votes = 0;
        for (std::size_t i = 0; i < replies.size(); ++i) {
          if (replies[i].has_value() && replies[i]->ok()) {
            votes += config.VotesOf(nodes[i]);
          }
        }
        return votes >= quota;
      };

  net::FanOutOptions fan_options;
  fan_options.retry = options_.rpc_retry;
  const auto fan = client_.HedgedParallelCall<LookupReply>(
      slots, primary_count, kLookup, ctx.txn, fan_options, HedgeDelayMicros(),
      quota_fn, kAbortTxn);

  // Accounting differs from FanOutRep: the winning set is vote-counted, not
  // all-strong-required. Completed slots that executed enroll (their locks
  // persist to the read-only commit); completed-unreachable slots get the
  // same best-effort abort as weak misses; detached slots were already
  // cancelled by the transport layer and must NOT enroll.
  Votes votes = 0;
  VersionedLookup best;
  bool first = true;
  for (std::size_t i = 0; i < fan.issued; ++i) {
    ++read_rpcs_[nodes[i]];
    if (!fan.replies[i].has_value()) continue;  // detached straggler
    const Result<LookupReply>& reply = *fan.replies[i];
    const bool executed =
        reply.ok() || reply.status().code() != StatusCode::kUnavailable;
    if (executed) {
      ctx.participants.insert(nodes[i]);
    } else {
      (void)client_.Call<net::Empty>(nodes[i], kAbortTxn, net::Empty{},
                                     ctx.txn);
    }
    if (!reply.ok()) continue;
    votes += options_.config.VotesOf(nodes[i]);
    const bool better =
        first || reply->version > best.version ||
        (reply->version == best.version && reply->present && !best.present);
    if (better) {
      best.present = reply->present;
      best.version = reply->version;
      best.value = reply->value;
      first = false;
    }
  }
  if (votes < quota) {
    return Status::Unavailable("read quorum unavailable (hedged: " +
                               std::to_string(votes) + "/" +
                               std::to_string(quota) + " votes)");
  }
  return best;
}

Status DirectorySuite::RefillCursors(OpCtx& ctx,
                                     std::vector<NeighborCursor>& cursors,
                                     const RepKey& k, bool below) {
  // Cached chain entries walk strictly away from the start key; the local
  // neighbor of k is the first one past it. While a chain holds entries on
  // the wrong side of k they were superseded by deeper candidates from
  // other members - skip them. Cursors that exhaust their cache refill
  // with one batched fetch wave (§4 optimization).
  std::vector<std::size_t> needy;
  for (std::size_t c = 0; c < cursors.size(); ++c) {
    NeighborCursor& cursor = cursors[c];
    while (cursor.idx < cursor.chain.size() &&
           (below ? !(cursor.chain[cursor.idx].key < k)
                  : !(k < cursor.chain[cursor.idx].key))) {
      ++cursor.idx;
    }
    if (cursor.idx == cursor.chain.size()) needy.push_back(c);
  }
  if (needy.empty()) return Status::Ok();

  std::vector<net::CallSlot<NeighborBatchRequest>> slots;
  slots.reserve(needy.size());
  for (const std::size_t c : needy) {
    slots.push_back(
        {cursors[c].node, NeighborBatchRequest{k, options_.neighbor_batch}});
  }
  stats_.counters().neighbor_fetches += needy.size();
  auto fan = FanOutRep<NeighborBatchReply>(
      ctx, below ? kPredecessorBatch : kSuccessorBatch, slots, slots.size());
  REPDIR_RETURN_IF_ERROR(FirstStrongError(fan, slots.size()));
  for (std::size_t i = 0; i < needy.size(); ++i) {
    NeighborCursor& cursor = cursors[needy[i]];
    cursor.chain = std::move(fan.replies[i]->value().steps);
    cursor.idx = 0;
    if (cursor.chain.empty()) {
      return Status::Internal(below ? "empty predecessor batch"
                                    : "empty successor batch");
    }
  }
  return Status::Ok();
}

Result<DirectorySuite::RealNeighbor> DirectorySuite::RealPredecessor(
    OpCtx& ctx, const std::vector<NodeId>& quorum, const RepKey& x) {
  // Fig. 12. Candidates move strictly downward, skipping ghosts, until a
  // key current in the suite (or the LOW sentinel) is found. Each quorum
  // member serves candidates through a batched cursor (§4): with
  // neighbor_batch = 1 this is exactly the paper's sketch.
  std::vector<NeighborCursor> cursors;
  cursors.reserve(quorum.size());
  for (const NodeId node : quorum) cursors.push_back(NeighborCursor{node, {}, 0});

  RepKey k = x;
  Version max_gap = kLowestVersion;
  for (;;) {
    REPDIR_RETURN_IF_ERROR(RefillCursors(ctx, cursors, k, /*below=*/true));
    RepKey pred = RepKey::Low();
    for (const NeighborCursor& cursor : cursors) {
      const NeighborReply& reply = cursor.chain[cursor.idx];
      if (pred < reply.key) pred = reply.key;
      max_gap = std::max(max_gap, reply.gap_version);
    }
    REPDIR_ASSIGN_OR_RETURN(const VersionedLookup lk,
                            SuiteLookupOn(ctx, quorum, pred));
    if (lk.present) {
      return RealNeighbor{pred, lk.value, lk.version, max_gap};
    }
    // `pred` is a ghost: its current ("not present") version also bounds
    // versions in the range being searched.
    max_gap = std::max(max_gap, lk.version);
    k = pred;
  }
}

Result<DirectorySuite::RealNeighbor> DirectorySuite::RealSuccessor(
    OpCtx& ctx, const std::vector<NodeId>& quorum, const RepKey& x) {
  std::vector<NeighborCursor> cursors;
  cursors.reserve(quorum.size());
  for (const NodeId node : quorum) cursors.push_back(NeighborCursor{node, {}, 0});

  RepKey k = x;
  Version max_gap = kLowestVersion;
  for (;;) {
    REPDIR_RETURN_IF_ERROR(RefillCursors(ctx, cursors, k, /*below=*/false));
    RepKey succ = RepKey::High();
    for (const NeighborCursor& cursor : cursors) {
      const NeighborReply& reply = cursor.chain[cursor.idx];
      if (reply.key < succ) succ = reply.key;
      max_gap = std::max(max_gap, reply.gap_version);
    }
    REPDIR_ASSIGN_OR_RETURN(const VersionedLookup lk,
                            SuiteLookupOn(ctx, quorum, succ));
    if (lk.present) {
      return RealNeighbor{succ, lk.value, lk.version, max_gap};
    }
    max_gap = std::max(max_gap, lk.version);
    k = succ;
  }
}

Status DirectorySuite::Finish(OpCtx& ctx, Status body_status) {
  if (!body_status.ok()) {
    committer_.Abort(ctx.txn, ctx.participants);
    if (options_.decision_hook) options_.decision_hook(ctx.txn, false);
    return body_status;
  }
  // Read-only transactions skip phase 1: nothing was written, so there is
  // no durability promise to collect - one COMMIT round releases locks.
  const Status st =
      ctx.wrote ? committer_.Commit(ctx.txn, ctx.participants)
                : committer_.CommitReadOnly(ctx.txn, ctx.participants);
  if (options_.decision_hook) options_.decision_hook(ctx.txn, st.ok());
  if (st.ok()) {
    for (const DeleteProbe& probe : ctx.probes) {
      stats_.RecordDelete(probe);
      metrics_->counter(Metric("delete.ghosts"))
          .Increment(probe.ghost_deletions);
      metrics_->counter(Metric("delete.materializations"))
          .Increment(probe.materializing_insertions);
    }
    // Only now is the transaction's data committed - safe to cache.
    ApplyCacheActions(ctx);
  }
  return st;
}

template <typename Fn>
Status DirectorySuite::RunTxn(const char* op_name, bool allow_fast,
                              bool* used_fast, Fn&& body) {
  OpCtx ctx(txn_ids_->Next());
  ctx.allow_fast = allow_fast;
  TraceSpan span(*trace_, Metric(op_name), ctx.txn);
  ScopedLatency latency(
      *metrics_, metrics_->distribution(Metric("op.") + op_name + "_us"));
  const Status st = Finish(ctx, body(ctx));
  if (!st.ok()) span.Annotate(st.ToString());
  if (used_fast != nullptr) *used_fast = ctx.used_fast;
  return st;
}

template <typename Fn>
Status DirectorySuite::RunTxnCached(const char* op_name, Fn&& body) {
  bool used_fast = false;
  // Fast paths arm when the cache can supply hints OR hedged reads may
  // skip the ping round; both recover from a lost bet the same way below.
  const bool allow_fast = cache_ != nullptr || options_.enable_hedged_reads;
  Status st = RunTxn(op_name, allow_fast, &used_fast, body);
  if (used_fast && (st.code() == StatusCode::kVersionMismatch ||
                    st.code() == StatusCode::kUnavailable)) {
    // The optimistic bet lost - stale cache (guard refused) or an unpinged
    // member down. The losing attempt's abort rolled back any partial
    // guarded writes; re-run read-then-write in a fresh transaction, which
    // sees only committed state.
    ++stats_.counters().cache_fallbacks;
    cache_fallbacks_->Increment();
    st = RunTxn(op_name, /*allow_fast=*/false, nullptr, body);
  }
  return st;
}

Status DirectorySuite::Record(Status st, std::uint64_t OpCounters::*counter,
                              Counter* mirror) {
  if (st.ok()) {
    ++(stats_.counters().*counter);
    mirror->Increment();
  } else if (st.code() == StatusCode::kUnavailable) {
    ++stats_.counters().unavailable;
    metrics_->counter(Metric("ops.unavailable")).Increment();
  } else if (st.code() == StatusCode::kAborted) {
    ++stats_.counters().aborted;
    metrics_->counter(Metric("ops.aborted")).Increment();
  }
  return st;
}

// --- Operation bodies ---

Result<DirectorySuite::LookupResult> DirectorySuite::LookupIn(
    OpCtx& ctx, const UserKey& key) {
  const RepKey x = RepKey::User(key);
  REPDIR_ASSIGN_OR_RETURN(const VersionedLookup lk,
                          SuiteLookup(ctx, x, CacheLookup(x)));
  LookupResult result;
  result.found = lk.present;
  result.value = lk.value;
  return result;
}

Status DirectorySuite::WriteEntry(OpCtx& ctx, const RepKey& x, Version version,
                                  const Value& value) {
  // Fig. 9 write leg: one wave writes (x, version) to every write-quorum
  // member and - best effort - to every zero-vote representative. Weak
  // failures are ignored (the write quorum already guarantees currency).
  REPDIR_ASSIGN_OR_RETURN(const auto wq, CollectQuorum(OpClass::kWrite));
  std::vector<net::CallSlot<InsertRequest>> slots;
  slots.reserve(wq.size() + weak_nodes_.size());
  for (const NodeId node : wq) {
    slots.push_back({node, InsertRequest{x, version, value}});
  }
  for (const NodeId node : weak_nodes_) {
    slots.push_back({node, InsertRequest{x, version, value}});
  }
  const auto fan = FanOutRep<net::Empty>(ctx, kInsert, slots, wq.size());
  REPDIR_RETURN_IF_ERROR(FirstStrongError(fan, wq.size()));
  VersionCache::Entry written;
  written.present = true;
  written.version = version;
  written.value = value;
  StagePut(ctx, x, std::move(written));
  return Status::Ok();
}

Status DirectorySuite::FastWriteEntry(OpCtx& ctx, const RepKey& x,
                                      Version expected, const Value& value) {
  // The single-round optimistic write: no ping wave, no read round - one
  // guarded-insert wave carries the cached version as a precondition every
  // voting member checks under its modify lock. Soundness: with 2W > V
  // (checked at construction) any conflicting write committed since the
  // cache learned `expected` intersects this quorum in a member whose
  // local version now exceeds it, so the guard cannot pass everywhere.
  ctx.used_fast = true;
  REPDIR_ASSIGN_OR_RETURN(const auto wq, OptimisticQuorum(OpClass::kWrite));
  const Version version = expected + 1;
  std::vector<net::CallSlot<GuardedInsertRequest>> slots;
  slots.reserve(wq.size() + weak_nodes_.size());
  for (const NodeId node : wq) {
    slots.push_back({node, GuardedInsertRequest{x, version, value, expected}});
  }
  for (const NodeId node : weak_nodes_) {
    slots.push_back({node, GuardedInsertRequest{x, version, value, expected}});
  }
  const auto fan =
      FanOutRep<net::Empty>(ctx, kGuardedInsert, slots, wq.size());
  const Status st = FirstStrongError(fan, wq.size());
  if (st.code() == StatusCode::kVersionMismatch) {
    // The cache is provably stale for x; drop it before the fallback
    // re-reads. (Invalidation needs no commit barrier - removing a cached
    // datum is always safe.)
    if (cache_->Invalidate(x)) {
      ++stats_.counters().cache_invalidations;
      cache_invalidations_->Increment();
    }
    return st;
  }
  REPDIR_RETURN_IF_ERROR(st);
  ++stats_.counters().fast_path_writes;
  fast_path_writes_->Increment();
  VersionCache::Entry written;
  written.present = true;
  written.version = version;
  written.value = value;
  StagePut(ctx, x, std::move(written));
  return Status::Ok();
}

std::optional<VersionCache::Entry> DirectorySuite::CacheLookup(
    const RepKey& k) {
  if (cache_ == nullptr) return std::nullopt;
  std::optional<VersionCache::Entry> hit = cache_->Lookup(k);
  if (hit.has_value()) {
    ++stats_.counters().cache_hits;
    cache_hits_->Increment();
  } else {
    ++stats_.counters().cache_misses;
    cache_misses_->Increment();
  }
  return hit;
}

void DirectorySuite::StagePut(OpCtx& ctx, const RepKey& k,
                              VersionCache::Entry entry) {
  if (cache_ == nullptr) return;
  OpCtx::CacheAction action;
  action.kind = OpCtx::CacheAction::Kind::kPut;
  action.key = k;
  action.entry = std::move(entry);
  ctx.cache_actions.push_back(std::move(action));
}

void DirectorySuite::StageRangeInvalidation(OpCtx& ctx, const RepKey& low,
                                            const RepKey& high) {
  if (cache_ == nullptr) return;
  OpCtx::CacheAction action;
  action.kind = OpCtx::CacheAction::Kind::kInvalidateRange;
  action.low = low;
  action.high = high;
  ctx.cache_actions.push_back(std::move(action));
}

void DirectorySuite::ApplyCacheActions(OpCtx& ctx) {
  if (cache_ == nullptr) return;
  for (OpCtx::CacheAction& action : ctx.cache_actions) {
    switch (action.kind) {
      case OpCtx::CacheAction::Kind::kPut:
        cache_->Put(action.key, std::move(action.entry));
        break;
      case OpCtx::CacheAction::Kind::kInvalidateRange: {
        const std::size_t removed =
            cache_->InvalidateRange(action.low, action.high);
        stats_.counters().cache_invalidations += removed;
        cache_invalidations_->Increment(removed);
        break;
      }
    }
  }
  ctx.cache_actions.clear();
}

Status DirectorySuite::InsertIn(OpCtx& ctx, const UserKey& key,
                                const Value& value) {
  // Fig. 9: the new entry's version must exceed every version previously
  // associated with the key, which the read-quorum lookup supplies - or,
  // on a cache hit for an absent key, the cached gap version already did,
  // and a guarded write collapses the whole operation into one round.
  const RepKey x = RepKey::User(key);
  const std::optional<VersionCache::Entry> hint = CacheLookup(x);
  if (ctx.allow_fast && fast_writes_ok_ && hint.has_value() &&
      !hint->present) {
    return FastWriteEntry(ctx, x, hint->version, value);
  }
  REPDIR_ASSIGN_OR_RETURN(const VersionedLookup lk, SuiteLookup(ctx, x, hint));
  if (lk.present) {
    return Status::AlreadyExists("entry exists for key " + key);
  }
  return WriteEntry(ctx, x, lk.version + 1, value);
}

Status DirectorySuite::UpdateIn(OpCtx& ctx, const UserKey& key,
                                const Value& value) {
  const RepKey x = RepKey::User(key);
  const std::optional<VersionCache::Entry> hint = CacheLookup(x);
  if (ctx.allow_fast && fast_writes_ok_ && hint.has_value() && hint->present) {
    return FastWriteEntry(ctx, x, hint->version, value);
  }
  REPDIR_ASSIGN_OR_RETURN(const VersionedLookup lk, SuiteLookup(ctx, x, hint));
  if (!lk.present) {
    return Status::NotFound("no entry for key " + key);
  }
  return WriteEntry(ctx, x, lk.version + 1, value);
}

// Deletes deliberately do NOT touch weak representatives: their stale
// copies are ghosts with versions below the coalesced gap's, so every read
// (which always includes a full voting quorum) still answers correctly.
Status DirectorySuite::DeleteIn(OpCtx& ctx, const UserKey& key) {
  const RepKey x = RepKey::User(key);
  // Fig. 13, in the paper's order: write quorum first, then one read
  // quorum that every inquiry of the delete shares - the real-neighbor
  // searches and the target's own lookup read the same members, so
  // collecting a fresh quorum per inquiry only added ping rounds without
  // changing any reply.
  REPDIR_ASSIGN_OR_RETURN(const auto wq, CollectQuorum(OpClass::kWrite));
  REPDIR_ASSIGN_OR_RETURN(const auto rq, CollectQuorum(OpClass::kRead));
  REPDIR_ASSIGN_OR_RETURN(const RealNeighbor succ, RealSuccessor(ctx, rq, x));
  REPDIR_ASSIGN_OR_RETURN(const RealNeighbor pred, RealPredecessor(ctx, rq, x));

  // The coalesced gap's version must exceed every version previously
  // associated with any key in (pred, succ).
  Version ver = std::max(succ.max_gap, pred.max_gap);
  REPDIR_ASSIGN_OR_RETURN(const VersionedLookup lk, SuiteLookupOn(ctx, rq, x));
  if (!lk.present) {
    return Status::NotFound("no entry for key " + key);
  }
  ver = std::max(ver, lk.version);

  // Materialize the real predecessor and successor on every write-quorum
  // member that lacks them, so Coalesce's bounding entries exist: one
  // lookup wave probes both bounding keys at every member, one insert wave
  // fills in the absences.
  DeleteProbe probe;
  std::vector<net::CallSlot<KeyRequest>> probe_slots;
  probe_slots.reserve(2 * wq.size());
  for (const NodeId node : wq) {
    probe_slots.push_back({node, KeyRequest{succ.key}});
    probe_slots.push_back({node, KeyRequest{pred.key}});
  }
  const auto probes =
      FanOutRep<LookupReply>(ctx, kLookup, probe_slots, probe_slots.size());
  REPDIR_RETURN_IF_ERROR(FirstStrongError(probes, probe_slots.size()));

  std::vector<net::CallSlot<InsertRequest>> fills;
  for (std::size_t i = 0; i < wq.size(); ++i) {
    if (!probes.replies[2 * i]->value().present) {
      fills.push_back(
          {wq[i], InsertRequest{succ.key, succ.version, succ.value}});
    }
    if (!probes.replies[2 * i + 1]->value().present) {
      fills.push_back(
          {wq[i], InsertRequest{pred.key, pred.version, pred.value}});
    }
  }
  if (!fills.empty()) {
    const auto filled =
        FanOutRep<net::Empty>(ctx, kInsert, fills, fills.size());
    REPDIR_RETURN_IF_ERROR(FirstStrongError(filled, fills.size()));
    probe.materializing_insertions +=
        static_cast<std::uint32_t>(fills.size());
  }

  std::vector<net::CallSlot<CoalesceRequest>> ranges;
  ranges.reserve(wq.size());
  for (const NodeId node : wq) {
    ranges.push_back({node, CoalesceRequest{pred.key, succ.key, ver + 1}});
  }
  const auto coalesced =
      FanOutRep<CoalesceReply>(ctx, kCoalesce, ranges, ranges.size());
  REPDIR_RETURN_IF_ERROR(FirstStrongError(coalesced, ranges.size()));
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const CoalesceReply& reply = coalesced.replies[i]->value();
    probe.entries_in_range_per_rep.push_back(
        static_cast<std::uint32_t>(reply.erased.size()));
    for (const RepKey& erased : reply.erased) {
      if (!(erased == x)) ++probe.ghost_deletions;
    }
  }
  ctx.probes.push_back(std::move(probe));

  // Coalesce re-versioned every key in [pred, succ]: cached state for any
  // of them (including gaps recorded with overlapping bounds) is stale.
  // Re-cache the target as absent at the new gap version, bounds attached,
  // so a follow-up insert of the same key can go fast-path.
  StageRangeInvalidation(ctx, pred.key, succ.key);
  VersionCache::Entry gap;
  gap.present = false;
  gap.version = ver + 1;
  gap.has_gap_bounds = true;
  gap.gap_low = pred.key;
  gap.gap_high = succ.key;
  StagePut(ctx, x, std::move(gap));
  return Status::Ok();
}

Result<DirectorySuite::NextKeyResult> DirectorySuite::NextKeyIn(
    OpCtx& ctx, const RepKey& from) {
  REPDIR_ASSIGN_OR_RETURN(const auto rq, CollectQuorum(OpClass::kRead));
  REPDIR_ASSIGN_OR_RETURN(const RealNeighbor succ,
                          RealSuccessor(ctx, rq, from));
  NextKeyResult result;
  if (succ.key.is_high()) return result;  // found = false
  result.found = true;
  result.key = succ.key.user();
  result.value = succ.value;
  // The search proved this entry current - cache it for later point ops.
  VersionCache::Entry found;
  found.present = true;
  found.version = succ.version;
  found.value = succ.value;
  StagePut(ctx, succ.key, std::move(found));
  return result;
}

// --- Batched operations ---

Status DirectorySuite::BatchIn(OpCtx& ctx, const std::vector<BatchOp>& ops,
                               std::vector<BatchOpResult>& results) {
  results.resize(ops.size());
  // Distinct keys, in key order (sorted order keeps lock acquisition on
  // every representative deterministic across clients, which keeps the
  // deadlock surface no worse than sorted sequential execution).
  std::map<RepKey, VersionedLookup> state;
  bool has_writes = false;
  for (const BatchOp& op : ops) {
    state.emplace(RepKey::User(op.key), VersionedLookup{});
    has_writes |= op.kind != BatchOp::Kind::kLookup;
  }
  std::vector<RepKey> keys;
  keys.reserve(state.size());
  for (const auto& [k, unused] : state) keys.push_back(k);

  // Wave 1: one batched inquiry per read-quorum member (plus best-effort
  // weak hints) learns every key's current version - Fig. 8, amortized.
  REPDIR_ASSIGN_OR_RETURN(const auto rq, CollectQuorum(OpClass::kRead));
  LookupBatchRequest lookup_req;
  lookup_req.keys = keys;
  std::vector<net::CallSlot<LookupBatchRequest>> slots;
  slots.reserve(rq.size() + weak_nodes_.size());
  for (const NodeId node : rq) slots.push_back({node, lookup_req});
  for (const NodeId node : weak_nodes_) slots.push_back({node, lookup_req});
  const auto fan =
      FanOutRep<LookupBatchReply>(ctx, kLookupBatch, slots, rq.size());
  REPDIR_RETURN_IF_ERROR(FirstStrongError(fan, rq.size()));
  for (std::size_t i = 0; i < fan.issued; ++i) {
    const Result<LookupBatchReply>& reply = *fan.replies[i];
    if (!reply.ok()) continue;  // weak miss: best-effort
    if (reply->replies.size() != keys.size()) {
      if (i < rq.size()) {
        return Status::Corruption("batched lookup reply count mismatch");
      }
      continue;  // malformed weak hint: ignore
    }
    for (std::size_t j = 0; j < keys.size(); ++j) {
      const LookupReply& one = reply->replies[j];
      VersionedLookup& best = state[keys[j]];
      const bool better =
          one.version > best.version ||
          (one.version == best.version && one.present && !best.present);
      if (better) {
        best.present = one.present;
        best.version = one.version;
        best.value = one.value;
      }
    }
  }

  // Apply the ops in submission order against the folded snapshot. Later
  // ops observe earlier ops' effects; every mutation bumps the key's
  // version exactly as its single-shot form would, so the final shipped
  // version equals what sequential execution would have committed.
  std::set<RepKey> dirty;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const BatchOp& op = ops[i];
    const RepKey x = RepKey::User(op.key);
    VersionedLookup& cur = state[x];
    switch (op.kind) {
      case BatchOp::Kind::kLookup:
        results[i].lookup.found = cur.present;
        results[i].lookup.value = cur.value;
        break;
      case BatchOp::Kind::kInsert:
        if (cur.present) {
          results[i].status = Status::AlreadyExists("key exists: " + op.key);
          break;
        }
        cur.present = true;
        cur.version += 1;
        cur.value = op.value;
        dirty.insert(x);
        break;
      case BatchOp::Kind::kUpdate:
        if (!cur.present) {
          results[i].status = Status::NotFound("no entry for key: " + op.key);
          break;
        }
        cur.version += 1;
        cur.value = op.value;
        dirty.insert(x);
        break;
    }
  }

  // Wave 2: ship every dirty key's final (version, value) - one batched
  // write per write-quorum member plus best-effort weak copies. Fig. 9's
  // write leg, amortized the same way.
  if (!dirty.empty()) {
    REPDIR_ASSIGN_OR_RETURN(const auto wq, CollectQuorum(OpClass::kWrite));
    InsertBatchRequest write_req;
    write_req.inserts.reserve(dirty.size());
    for (const RepKey& x : dirty) {
      const VersionedLookup& fin = state[x];
      write_req.inserts.push_back(InsertRequest{x, fin.version, fin.value});
    }
    std::vector<net::CallSlot<InsertBatchRequest>> wslots;
    wslots.reserve(wq.size() + weak_nodes_.size());
    for (const NodeId node : wq) wslots.push_back({node, write_req});
    for (const NodeId node : weak_nodes_) wslots.push_back({node, write_req});
    const auto wfan =
        FanOutRep<net::Empty>(ctx, kInsertBatch, wslots, wq.size());
    REPDIR_RETURN_IF_ERROR(FirstStrongError(wfan, wq.size()));
  }

  // The folded snapshot is committed data plus this transaction's own
  // writes; both are safe to cache once Finish commits.
  if (cache_ != nullptr) {
    for (const RepKey& x : keys) {
      const VersionedLookup& fin = state[x];
      VersionCache::Entry entry;
      entry.present = fin.present;
      entry.version = fin.version;
      entry.value = fin.value;
      StagePut(ctx, x, std::move(entry));
    }
  }
  return Status::Ok();
}

DirectorySuite::BatchResult DirectorySuite::ExecuteBatch(
    const std::vector<BatchOp>& ops) {
  BatchResult result;
  result.ops.resize(ops.size());
  if (ops.empty()) return result;
  metrics_->distribution(Metric("batch.size"))
      .Record(static_cast<double>(ops.size()));
  result.status = RunTxn("batch", /*allow_fast=*/false, nullptr,
                         [&](OpCtx& ctx) {
                           return BatchIn(ctx, ops, result.ops);
                         });
  if (result.status.ok()) {
    metrics_->counter(Metric("ops.batches")).Increment();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (!result.ops[i].status.ok()) continue;
      switch (ops[i].kind) {
        case BatchOp::Kind::kLookup:
          ++stats_.counters().lookups;
          metrics_->counter(Metric("ops.lookups")).Increment();
          break;
        case BatchOp::Kind::kInsert:
          ++stats_.counters().inserts;
          metrics_->counter(Metric("ops.inserts")).Increment();
          break;
        case BatchOp::Kind::kUpdate:
          ++stats_.counters().updates;
          metrics_->counter(Metric("ops.updates")).Increment();
          break;
      }
    }
  } else {
    // One transaction, one failure: the batch aborts or retries as a unit.
    (void)Record(result.status, &OpCounters::lookups,
                 &metrics_->counter(Metric("ops.lookups")));
  }
  return result;
}

BatchBuilder DirectorySuite::Batch() { return BatchBuilder(*this); }

// --- Single-shot public API ---

Result<DirectorySuite::LookupResult> DirectorySuite::Lookup(
    const UserKey& key) {
  LookupResult result;
  const Status st = RunTxnCached("lookup", [&](OpCtx& ctx) -> Status {
    // The inquiry is this transaction's only wave, so hedging is safe.
    ctx.hedge_ok = true;
    REPDIR_ASSIGN_OR_RETURN(result, LookupIn(ctx, key));
    return Status::Ok();
  });
  REPDIR_RETURN_IF_ERROR(Record(st, &OpCounters::lookups,
                                &metrics_->counter(Metric("ops.lookups"))));
  return result;
}

Result<DirectorySuite::LookupResult> DirectorySuite::LookupStale(
    const UserKey& key) {
  if (!options_.enable_stale_reads) {
    return Status::FailedPrecondition(
        "stale reads are disabled (SuiteOptions::enable_stale_reads)");
  }
  NodeId node = options_.stale_read_node;
  if (node == kInvalidNode) {
    node = weak_nodes_.empty() ? options_.config.replicas().front().node
                               : weak_nodes_.front();
  }
  // One lookup under a fresh transaction; the single read lock is released
  // by a read-only commit round to the same node. No quorum is consulted -
  // freshness is whatever reconciliation last established for this replica.
  const TxnId txn = txn_ids_->Next();
  const auto reply = client_.Call<LookupReply>(node, kLookup,
                                               KeyRequest{RepKey::User(key)},
                                               txn);
  if (!reply.ok()) {
    // The failed call may still have left a lock behind.
    committer_.Abort(txn, {node});
    if (options_.decision_hook) options_.decision_hook(txn, false);
    stale_fallbacks_->Increment();
    return Lookup(key);
  }
  const Status done = committer_.CommitReadOnly(txn, {node});
  if (options_.decision_hook) options_.decision_hook(txn, done.ok());
  if (!done.ok()) {
    stale_fallbacks_->Increment();
    return Lookup(key);
  }
  stale_reads_->Increment();
  LookupResult result;
  result.found = reply->present;
  if (reply->present) result.value = reply->value;
  return result;
}

Status DirectorySuite::Insert(const UserKey& key, const Value& value) {
  return Record(
      RunTxnCached("insert",
                   [&](OpCtx& ctx) { return InsertIn(ctx, key, value); }),
      &OpCounters::inserts, &metrics_->counter(Metric("ops.inserts")));
}

Status DirectorySuite::Update(const UserKey& key, const Value& value) {
  return Record(
      RunTxnCached("update",
                   [&](OpCtx& ctx) { return UpdateIn(ctx, key, value); }),
      &OpCounters::updates, &metrics_->counter(Metric("ops.updates")));
}

Status DirectorySuite::Delete(const UserKey& key) {
  return Record(
      RunTxn("delete", /*allow_fast=*/false, nullptr,
             [&](OpCtx& ctx) { return DeleteIn(ctx, key); }),
      &OpCounters::deletes, &metrics_->counter(Metric("ops.deletes")));
}

Result<DirectorySuite::NextKeyResult> DirectorySuite::NextKey(
    const UserKey& key) {
  NextKeyResult result;
  const Status st = RunTxn("nextkey", /*allow_fast=*/false, nullptr,
                           [&](OpCtx& ctx) -> Status {
    REPDIR_ASSIGN_OR_RETURN(result, NextKeyIn(ctx, RepKey::User(key)));
    return Status::Ok();
  });
  REPDIR_RETURN_IF_ERROR(Record(st, &OpCounters::lookups,
                                &metrics_->counter(Metric("ops.lookups"))));
  return result;
}

Result<DirectorySuite::NextKeyResult> DirectorySuite::FirstKey() {
  NextKeyResult result;
  const Status st = RunTxn("nextkey", /*allow_fast=*/false, nullptr,
                           [&](OpCtx& ctx) -> Status {
    REPDIR_ASSIGN_OR_RETURN(result, NextKeyIn(ctx, RepKey::Low()));
    return Status::Ok();
  });
  REPDIR_RETURN_IF_ERROR(Record(st, &OpCounters::lookups,
                                &metrics_->counter(Metric("ops.lookups"))));
  return result;
}

SuiteTxn DirectorySuite::Begin() { return SuiteTxn(*this); }

SuiteTxn DirectorySuite::BeginAt(TxnId txn) { return SuiteTxn(*this, txn); }

// --- SuiteTxn ---

namespace {

/// Applies the auto-abort policy: hard failures (lock aborts, quorum loss,
/// transport errors) poison the transaction; clean check failures do not.
Status TxnOpOutcome(SuiteTxn& txn, Status st) {
  if (!st.ok() && !IsCleanCheckFailure(st)) txn.Abort();
  return st;
}

}  // namespace

Result<DirectorySuite::LookupResult> SuiteTxn::Lookup(const UserKey& key) {
  REPDIR_RETURN_IF_ERROR(Guard());
  auto out = suite_->LookupIn(ctx_, key);
  if (!out.ok()) (void)TxnOpOutcome(*this, out.status());
  return out;
}

Status SuiteTxn::Insert(const UserKey& key, const Value& value) {
  REPDIR_RETURN_IF_ERROR(Guard());
  return TxnOpOutcome(*this, suite_->InsertIn(ctx_, key, value));
}

Status SuiteTxn::Update(const UserKey& key, const Value& value) {
  REPDIR_RETURN_IF_ERROR(Guard());
  return TxnOpOutcome(*this, suite_->UpdateIn(ctx_, key, value));
}

Status SuiteTxn::Delete(const UserKey& key) {
  REPDIR_RETURN_IF_ERROR(Guard());
  return TxnOpOutcome(*this, suite_->DeleteIn(ctx_, key));
}

Result<DirectorySuite::NextKeyResult> SuiteTxn::NextKey(const UserKey& key) {
  REPDIR_RETURN_IF_ERROR(Guard());
  auto out = suite_->NextKeyIn(ctx_, storage::RepKey::User(key));
  if (!out.ok()) (void)TxnOpOutcome(*this, out.status());
  return out;
}

Result<std::vector<DirectorySuite::BatchOpResult>> SuiteTxn::ExecuteBatch(
    const std::vector<DirectorySuite::BatchOp>& ops) {
  REPDIR_RETURN_IF_ERROR(Guard());
  std::vector<DirectorySuite::BatchOpResult> results;
  const Status st = suite_->BatchIn(ctx_, ops, results);
  if (!st.ok()) return TxnOpOutcome(*this, st);
  return results;
}

Status SuiteTxn::Commit() {
  REPDIR_RETURN_IF_ERROR(Guard());
  open_ = false;
  return suite_->Finish(ctx_, Status::Ok());
}

void SuiteTxn::Abort() {
  if (!open_) return;
  open_ = false;
  (void)suite_->Finish(ctx_, Status::Aborted("client abort"));
}

DirectorySuite::Handoff SuiteTxn::Detach() {
  DirectorySuite::Handoff handoff;
  if (!open_) return handoff;
  open_ = false;
  handoff.participants = std::move(ctx_.participants);
  handoff.wrote = ctx_.wrote;
  return handoff;
}

}  // namespace repdir::rep
