#include "rep/dir_suite.h"

#include <cassert>

namespace repdir::rep {

namespace {

constexpr txn::TxnControlMethods kTxnMethods{kPrepare, kCommit, kAbortTxn};

bool IsReadMethod(net::MethodId m) {
  return m == kLookup || m == kPredecessor || m == kSuccessor ||
         m == kPredecessorBatch || m == kSuccessorBatch;
}

/// Operation failures that leave no partial state and therefore do not
/// force a multi-operation transaction to abort.
bool IsCleanCheckFailure(const Status& st) {
  return st.code() == StatusCode::kNotFound ||
         st.code() == StatusCode::kAlreadyExists;
}

}  // namespace

DirectorySuite::DirectorySuite(net::Transport& transport, NodeId client_node,
                               Options options)
    : client_(transport, client_node),
      options_(std::move(options)),
      txn_ids_(client_node),
      committer_(client_, kTxnMethods, options_.rpc_retry) {
  assert(options_.config.Validate().ok() && "invalid quorum configuration");
  weak_nodes_ = options_.config.WeakNodes();
  if (options_.policy != nullptr) {
    policy_ = std::move(options_.policy);
  } else {
    policy_ = std::make_unique<RandomQuorumPolicy>(options_.config,
                                                   options_.policy_seed);
  }
}

template <WireMessage Resp, WireMessage Req>
Result<Resp> DirectorySuite::CallRep(OpCtx& ctx, NodeId node,
                                     net::MethodId method, const Req& req) {
  // Even a failed data call may have executed server-side (response lost),
  // leaving locks behind: the node must learn the transaction's outcome.
  ctx.participants.insert(node);
  if (IsReadMethod(method)) {
    ++read_rpcs_[node];
  } else {
    ++write_rpcs_[node];
    ctx.wrote = true;
  }
  Result<Resp> out = client_.Call<Resp>(node, method, req, ctx.txn);
  for (std::uint32_t attempt = 1;
       attempt < options_.rpc_retry.max_attempts && !out.ok() &&
       net::RetryPolicy::Retriable(out.status());
       ++attempt) {
    out = client_.Call<Resp>(node, method, req, ctx.txn);
  }
  return out;
}

template <WireMessage Resp, WireMessage Req>
Result<Resp> DirectorySuite::CallWeak(OpCtx& ctx, NodeId node,
                                      net::MethodId method, const Req& req) {
  // Best-effort call to a zero-vote representative. Unlike CallRep, a
  // transport failure must NOT enroll the node as a 2PC participant - an
  // unreachable hint node would otherwise fail PREPARE and abort the whole
  // transaction, defeating "best effort". If the node executed the request
  // (success or application error) it may hold locks, so it does join; on a
  // transport failure we fire a best-effort abort in case the request
  // executed but the response was lost.
  if (IsReadMethod(method)) {
    ++read_rpcs_[node];
  } else {
    ++write_rpcs_[node];
  }
  Result<Resp> out = client_.Call<Resp>(node, method, req, ctx.txn);
  if (out.ok() || out.status().code() != StatusCode::kUnavailable) {
    ctx.participants.insert(node);
    if (!IsReadMethod(method)) ctx.wrote = true;
  } else {
    (void)client_.Call<net::Empty>(node, kAbortTxn, net::Empty{}, ctx.txn);
  }
  return out;
}

Result<std::vector<NodeId>> DirectorySuite::CollectQuorum(OpClass klass) {
  const Votes quota = klass == OpClass::kRead ? options_.config.read_quorum()
                                              : options_.config.write_quorum();
  const std::vector<NodeId> order = policy_->PreferenceOrder(klass);
  std::vector<NodeId> members;
  Votes votes = 0;
  for (const NodeId node : order) {
    if (options_.config.VotesOf(node) == 0) continue;  // weak: no votes
    const Status st = net::WithRetry(options_.rpc_retry, [&] {
      return client_.Call<net::Empty>(node, kPing, net::Empty{}).status();
    });
    if (!st.ok()) continue;  // unreachable: try the next preference
    members.push_back(node);
    votes += options_.config.VotesOf(node);
    if (votes >= quota) return members;
  }
  return Status::Unavailable(
      std::string(klass == OpClass::kRead ? "read" : "write") +
      " quorum unavailable (" + std::to_string(votes) + "/" +
      std::to_string(quota) + " votes)");
}

Result<DirectorySuite::VersionedLookup> DirectorySuite::SuiteLookup(
    OpCtx& ctx, const RepKey& k) {
  REPDIR_ASSIGN_OR_RETURN(const auto quorum, CollectQuorum(OpClass::kRead));
  return SuiteLookupOn(ctx, quorum, k);
}

Result<DirectorySuite::VersionedLookup> DirectorySuite::SuiteLookupOn(
    OpCtx& ctx, const std::vector<NodeId>& quorum, const RepKey& k) {
  // Fig. 8: inquire at every quorum member; the reply with the largest
  // version number is current. (A strict tie between "present" and "not
  // present" cannot occur - see the version-invariant tests - but we
  // prefer "present" defensively.)
  VersionedLookup best;  // present=false, version=LowestVersion
  bool first = true;
  for (const NodeId node : quorum) {
    REPDIR_ASSIGN_OR_RETURN(
        const LookupReply reply,
        CallRep<LookupReply>(ctx, node, kLookup, KeyRequest{k}));
    const bool better =
        first || reply.version > best.version ||
        (reply.version == best.version && reply.present && !best.present);
    if (better) {
      best.present = reply.present;
      best.version = reply.version;
      best.value = reply.value;
      first = false;
    }
  }
  // Weak representatives (§2 "hints"): their replies carry no votes but can
  // only be folded in safely - all of their data was written by committed
  // transactions, so the highest-version rule still selects current data.
  for (const NodeId node : weak_nodes_) {
    const auto reply =
        CallWeak<LookupReply>(ctx, node, kLookup, KeyRequest{k});
    if (!reply.ok()) continue;  // best-effort
    if (reply->version > best.version ||
        (reply->version == best.version && reply->present && !best.present)) {
      best.present = reply->present;
      best.version = reply->version;
      best.value = reply->value;
      first = false;
    }
  }
  return best;
}

Result<NeighborReply> DirectorySuite::NextBelow(OpCtx& ctx,
                                                NeighborCursor& cursor,
                                                const RepKey& k) {
  // Cached chain entries are strictly decreasing; the local predecessor of
  // k is the first one below it. While the chain holds entries >= k they
  // were superseded by deeper candidates from other members - skip them.
  while (cursor.idx < cursor.chain.size() &&
         !(cursor.chain[cursor.idx].key < k)) {
    ++cursor.idx;
  }
  if (cursor.idx == cursor.chain.size()) {
    ++stats_.counters().neighbor_fetches;
    REPDIR_ASSIGN_OR_RETURN(
        NeighborBatchReply batch,
        CallRep<NeighborBatchReply>(
            ctx, cursor.node, kPredecessorBatch,
            NeighborBatchRequest{k, options_.neighbor_batch}));
    if (batch.steps.empty()) {
      return Status::Internal("empty predecessor batch");
    }
    cursor.chain = std::move(batch.steps);
    cursor.idx = 0;
  }
  return cursor.chain[cursor.idx];
}

Result<NeighborReply> DirectorySuite::NextAbove(OpCtx& ctx,
                                                NeighborCursor& cursor,
                                                const RepKey& k) {
  while (cursor.idx < cursor.chain.size() &&
         !(k < cursor.chain[cursor.idx].key)) {
    ++cursor.idx;
  }
  if (cursor.idx == cursor.chain.size()) {
    ++stats_.counters().neighbor_fetches;
    REPDIR_ASSIGN_OR_RETURN(
        NeighborBatchReply batch,
        CallRep<NeighborBatchReply>(
            ctx, cursor.node, kSuccessorBatch,
            NeighborBatchRequest{k, options_.neighbor_batch}));
    if (batch.steps.empty()) {
      return Status::Internal("empty successor batch");
    }
    cursor.chain = std::move(batch.steps);
    cursor.idx = 0;
  }
  return cursor.chain[cursor.idx];
}

Result<DirectorySuite::RealNeighbor> DirectorySuite::RealPredecessor(
    OpCtx& ctx, const RepKey& x) {
  // Fig. 12. Candidates move strictly downward, skipping ghosts, until a
  // key current in the suite (or the LOW sentinel) is found. Each quorum
  // member serves candidates through a batched cursor (§4): with
  // neighbor_batch = 1 this is exactly the paper's sketch.
  REPDIR_ASSIGN_OR_RETURN(const auto quorum, CollectQuorum(OpClass::kRead));
  std::vector<NeighborCursor> cursors;
  cursors.reserve(quorum.size());
  for (const NodeId node : quorum) cursors.push_back(NeighborCursor{node, {}, 0});

  RepKey k = x;
  Version max_gap = kLowestVersion;
  for (;;) {
    RepKey pred = RepKey::Low();
    for (NeighborCursor& cursor : cursors) {
      REPDIR_ASSIGN_OR_RETURN(const NeighborReply reply,
                              NextBelow(ctx, cursor, k));
      if (pred < reply.key) pred = reply.key;
      max_gap = std::max(max_gap, reply.gap_version);
    }
    REPDIR_ASSIGN_OR_RETURN(const VersionedLookup lk, SuiteLookup(ctx, pred));
    if (lk.present) {
      return RealNeighbor{pred, lk.value, lk.version, max_gap};
    }
    // `pred` is a ghost: its current ("not present") version also bounds
    // versions in the range being searched.
    max_gap = std::max(max_gap, lk.version);
    k = pred;
  }
}

Result<DirectorySuite::RealNeighbor> DirectorySuite::RealSuccessor(
    OpCtx& ctx, const RepKey& x) {
  REPDIR_ASSIGN_OR_RETURN(const auto quorum, CollectQuorum(OpClass::kRead));
  std::vector<NeighborCursor> cursors;
  cursors.reserve(quorum.size());
  for (const NodeId node : quorum) cursors.push_back(NeighborCursor{node, {}, 0});

  RepKey k = x;
  Version max_gap = kLowestVersion;
  for (;;) {
    RepKey succ = RepKey::High();
    for (NeighborCursor& cursor : cursors) {
      REPDIR_ASSIGN_OR_RETURN(const NeighborReply reply,
                              NextAbove(ctx, cursor, k));
      if (reply.key < succ) succ = reply.key;
      max_gap = std::max(max_gap, reply.gap_version);
    }
    REPDIR_ASSIGN_OR_RETURN(const VersionedLookup lk, SuiteLookup(ctx, succ));
    if (lk.present) {
      return RealNeighbor{succ, lk.value, lk.version, max_gap};
    }
    max_gap = std::max(max_gap, lk.version);
    k = succ;
  }
}

Status DirectorySuite::Finish(OpCtx& ctx, Status body_status) {
  if (!body_status.ok()) {
    committer_.Abort(ctx.txn, ctx.participants);
    return body_status;
  }
  // Read-only transactions skip phase 1: nothing was written, so there is
  // no durability promise to collect - one COMMIT round releases locks.
  const Status st =
      ctx.wrote ? committer_.Commit(ctx.txn, ctx.participants)
                : committer_.CommitReadOnly(ctx.txn, ctx.participants);
  if (st.ok()) {
    for (const DeleteProbe& probe : ctx.probes) stats_.RecordDelete(probe);
  }
  return st;
}

template <typename Fn>
Status DirectorySuite::RunTxn(Fn&& body) {
  OpCtx ctx{txn_ids_.Next(), {}, {}};
  return Finish(ctx, body(ctx));
}

Status DirectorySuite::Record(Status st, std::uint64_t OpCounters::*counter) {
  if (st.ok()) {
    ++(stats_.counters().*counter);
  } else if (st.code() == StatusCode::kUnavailable) {
    ++stats_.counters().unavailable;
  } else if (st.code() == StatusCode::kAborted) {
    ++stats_.counters().aborted;
  }
  return st;
}

// --- Operation bodies ---

Result<DirectorySuite::LookupResult> DirectorySuite::LookupIn(
    OpCtx& ctx, const UserKey& key) {
  REPDIR_ASSIGN_OR_RETURN(const VersionedLookup lk,
                          SuiteLookup(ctx, RepKey::User(key)));
  LookupResult result;
  result.found = lk.present;
  result.value = lk.value;
  return result;
}

Status DirectorySuite::InsertIn(OpCtx& ctx, const UserKey& key,
                                const Value& value) {
  // Fig. 9: the new entry's version must exceed every version previously
  // associated with the key, which the read-quorum lookup supplies.
  const RepKey x = RepKey::User(key);
  REPDIR_ASSIGN_OR_RETURN(const VersionedLookup lk, SuiteLookup(ctx, x));
  if (lk.present) {
    return Status::AlreadyExists("entry exists for key " + key);
  }
  const Version version = lk.version + 1;
  REPDIR_ASSIGN_OR_RETURN(const auto wq, CollectQuorum(OpClass::kWrite));
  for (const NodeId node : wq) {
    REPDIR_RETURN_IF_ERROR(
        CallRep<net::Empty>(ctx, node, kInsert,
                            InsertRequest{x, version, value})
            .status());
  }
  PropagateToWeak(ctx, x, version, value);
  return Status::Ok();
}

Status DirectorySuite::UpdateIn(OpCtx& ctx, const UserKey& key,
                                const Value& value) {
  const RepKey x = RepKey::User(key);
  REPDIR_ASSIGN_OR_RETURN(const VersionedLookup lk, SuiteLookup(ctx, x));
  if (!lk.present) {
    return Status::NotFound("no entry for key " + key);
  }
  const Version version = lk.version + 1;
  REPDIR_ASSIGN_OR_RETURN(const auto wq, CollectQuorum(OpClass::kWrite));
  for (const NodeId node : wq) {
    REPDIR_RETURN_IF_ERROR(
        CallRep<net::Empty>(ctx, node, kInsert,
                            InsertRequest{x, version, value})
            .status());
  }
  PropagateToWeak(ctx, x, version, value);
  return Status::Ok();
}

// Deletes deliberately do NOT touch weak representatives: their stale
// copies are ghosts with versions below the coalesced gap's, so every read
// (which always includes a full voting quorum) still answers correctly.
Status DirectorySuite::DeleteIn(OpCtx& ctx, const UserKey& key) {
  const RepKey x = RepKey::User(key);
  // Fig. 13, in the paper's order: write quorum first, then the real
  // neighbors, then the target's own version.
  REPDIR_ASSIGN_OR_RETURN(const auto wq, CollectQuorum(OpClass::kWrite));
  REPDIR_ASSIGN_OR_RETURN(const RealNeighbor succ, RealSuccessor(ctx, x));
  REPDIR_ASSIGN_OR_RETURN(const RealNeighbor pred, RealPredecessor(ctx, x));

  // The coalesced gap's version must exceed every version previously
  // associated with any key in (pred, succ).
  Version ver = std::max(succ.max_gap, pred.max_gap);
  REPDIR_ASSIGN_OR_RETURN(const VersionedLookup lk, SuiteLookup(ctx, x));
  if (!lk.present) {
    return Status::NotFound("no entry for key " + key);
  }
  ver = std::max(ver, lk.version);

  // Materialize the real predecessor and successor on every write-quorum
  // member that lacks them, so Coalesce's bounding entries exist.
  DeleteProbe probe;
  for (const NodeId node : wq) {
    REPDIR_ASSIGN_OR_RETURN(
        const LookupReply has_succ,
        CallRep<LookupReply>(ctx, node, kLookup, KeyRequest{succ.key}));
    if (!has_succ.present) {
      REPDIR_RETURN_IF_ERROR(
          CallRep<net::Empty>(ctx, node, kInsert,
                              InsertRequest{succ.key, succ.version,
                                            succ.value})
              .status());
      ++probe.materializing_insertions;
    }
    REPDIR_ASSIGN_OR_RETURN(
        const LookupReply has_pred,
        CallRep<LookupReply>(ctx, node, kLookup, KeyRequest{pred.key}));
    if (!has_pred.present) {
      REPDIR_RETURN_IF_ERROR(
          CallRep<net::Empty>(ctx, node, kInsert,
                              InsertRequest{pred.key, pred.version,
                                            pred.value})
              .status());
      ++probe.materializing_insertions;
    }
  }

  for (const NodeId node : wq) {
    REPDIR_ASSIGN_OR_RETURN(
        const CoalesceReply reply,
        CallRep<CoalesceReply>(ctx, node, kCoalesce,
                               CoalesceRequest{pred.key, succ.key, ver + 1}));
    probe.entries_in_range_per_rep.push_back(
        static_cast<std::uint32_t>(reply.erased.size()));
    for (const RepKey& erased : reply.erased) {
      if (!(erased == x)) ++probe.ghost_deletions;
    }
  }
  ctx.probes.push_back(std::move(probe));
  return Status::Ok();
}

void DirectorySuite::PropagateToWeak(OpCtx& ctx, const RepKey& x,
                                     Version version, const Value& value) {
  // Best-effort write to every zero-vote representative; failures are
  // ignored (the write quorum already guarantees currency). The weak node
  // still becomes a 2PC participant so any locks it took are resolved.
  for (const NodeId node : weak_nodes_) {
    (void)CallWeak<net::Empty>(ctx, node, kInsert,
                               InsertRequest{x, version, value});
  }
}

Result<DirectorySuite::NextKeyResult> DirectorySuite::NextKeyIn(
    OpCtx& ctx, const RepKey& from) {
  REPDIR_ASSIGN_OR_RETURN(const RealNeighbor succ, RealSuccessor(ctx, from));
  NextKeyResult result;
  if (succ.key.is_high()) return result;  // found = false
  result.found = true;
  result.key = succ.key.user();
  result.value = succ.value;
  return result;
}

// --- Single-shot public API ---

Result<DirectorySuite::LookupResult> DirectorySuite::Lookup(
    const UserKey& key) {
  LookupResult result;
  const Status st = RunTxn([&](OpCtx& ctx) -> Status {
    REPDIR_ASSIGN_OR_RETURN(result, LookupIn(ctx, key));
    return Status::Ok();
  });
  REPDIR_RETURN_IF_ERROR(Record(st, &OpCounters::lookups));
  return result;
}

Status DirectorySuite::Insert(const UserKey& key, const Value& value) {
  return Record(
      RunTxn([&](OpCtx& ctx) { return InsertIn(ctx, key, value); }),
      &OpCounters::inserts);
}

Status DirectorySuite::Update(const UserKey& key, const Value& value) {
  return Record(
      RunTxn([&](OpCtx& ctx) { return UpdateIn(ctx, key, value); }),
      &OpCounters::updates);
}

Status DirectorySuite::Delete(const UserKey& key) {
  return Record(RunTxn([&](OpCtx& ctx) { return DeleteIn(ctx, key); }),
                &OpCounters::deletes);
}

Result<DirectorySuite::NextKeyResult> DirectorySuite::NextKey(
    const UserKey& key) {
  NextKeyResult result;
  const Status st = RunTxn([&](OpCtx& ctx) -> Status {
    REPDIR_ASSIGN_OR_RETURN(result, NextKeyIn(ctx, RepKey::User(key)));
    return Status::Ok();
  });
  REPDIR_RETURN_IF_ERROR(Record(st, &OpCounters::lookups));
  return result;
}

Result<DirectorySuite::NextKeyResult> DirectorySuite::FirstKey() {
  NextKeyResult result;
  const Status st = RunTxn([&](OpCtx& ctx) -> Status {
    REPDIR_ASSIGN_OR_RETURN(result, NextKeyIn(ctx, RepKey::Low()));
    return Status::Ok();
  });
  REPDIR_RETURN_IF_ERROR(Record(st, &OpCounters::lookups));
  return result;
}

SuiteTxn DirectorySuite::Begin() { return SuiteTxn(*this); }

// --- SuiteTxn ---

namespace {

/// Applies the auto-abort policy: hard failures (lock aborts, quorum loss,
/// transport errors) poison the transaction; clean check failures do not.
Status TxnOpOutcome(SuiteTxn& txn, Status st) {
  if (!st.ok() && !IsCleanCheckFailure(st)) txn.Abort();
  return st;
}

}  // namespace

Result<DirectorySuite::LookupResult> SuiteTxn::Lookup(const UserKey& key) {
  REPDIR_RETURN_IF_ERROR(Guard());
  auto out = suite_->LookupIn(ctx_, key);
  if (!out.ok()) (void)TxnOpOutcome(*this, out.status());
  return out;
}

Status SuiteTxn::Insert(const UserKey& key, const Value& value) {
  REPDIR_RETURN_IF_ERROR(Guard());
  return TxnOpOutcome(*this, suite_->InsertIn(ctx_, key, value));
}

Status SuiteTxn::Update(const UserKey& key, const Value& value) {
  REPDIR_RETURN_IF_ERROR(Guard());
  return TxnOpOutcome(*this, suite_->UpdateIn(ctx_, key, value));
}

Status SuiteTxn::Delete(const UserKey& key) {
  REPDIR_RETURN_IF_ERROR(Guard());
  return TxnOpOutcome(*this, suite_->DeleteIn(ctx_, key));
}

Result<DirectorySuite::NextKeyResult> SuiteTxn::NextKey(const UserKey& key) {
  REPDIR_RETURN_IF_ERROR(Guard());
  auto out = suite_->NextKeyIn(ctx_, storage::RepKey::User(key));
  if (!out.ok()) (void)TxnOpOutcome(*this, out.status());
  return out;
}

Status SuiteTxn::Commit() {
  REPDIR_RETURN_IF_ERROR(Guard());
  open_ = false;
  return suite_->Finish(ctx_, Status::Ok());
}

void SuiteTxn::Abort() {
  if (!open_) return;
  open_ = false;
  (void)suite_->Finish(ctx_, Status::Aborted("client abort"));
}

}  // namespace repdir::rep
