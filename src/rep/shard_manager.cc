#include "rep/shard_manager.h"

#include <cstdio>
#include <set>
#include <utility>

#include "common/serde.h"
#include "rep/messages.h"

namespace repdir::rep {

namespace {

constexpr txn::TxnControlMethods kTxnMethods{kPrepare, kCommit, kAbortTxn};

constexpr char kHexDigits[] = "0123456789abcdef";

std::string ToHex(const std::string& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const unsigned char c : bytes) {
    out.push_back(kHexDigits[c >> 4]);
    out.push_back(kHexDigits[c & 0xF]);
  }
  return out;
}

Status FromHex(const std::string& hex, std::string* bytes) {
  if (hex.size() % 2 != 0) return Status::Corruption("odd hex length");
  bytes->clear();
  bytes->reserve(hex.size() / 2);
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return Status::Corruption("bad hex digit");
    bytes->push_back(static_cast<char>((hi << 4) | lo));
  }
  return Status::Ok();
}

void EncodeConfig(ByteWriter& w, const QuorumConfig& config) {
  w.PutVarint(config.replicas().size());
  for (const Replica& r : config.replicas()) {
    w.PutU32(r.node);
    w.PutU32(r.votes);
  }
  w.PutU32(config.read_quorum());
  w.PutU32(config.write_quorum());
}

Status DecodeConfig(ByteReader& r, QuorumConfig* config) {
  std::uint64_t count = 0;
  REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
  std::vector<Replica> replicas;
  replicas.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Replica rep;
    REPDIR_RETURN_IF_ERROR(r.GetU32(rep.node));
    REPDIR_RETURN_IF_ERROR(r.GetU32(rep.votes));
    replicas.push_back(rep);
  }
  Votes read_quorum = 0;
  Votes write_quorum = 0;
  REPDIR_RETURN_IF_ERROR(r.GetU32(read_quorum));
  REPDIR_RETURN_IF_ERROR(r.GetU32(write_quorum));
  *config = QuorumConfig(std::move(replicas), read_quorum, write_quorum);
  return Status::Ok();
}

}  // namespace

// --- FileShardJournal ---

Status FileShardJournal::Append(const std::string& line) {
  std::FILE* f = std::fopen(path_.c_str(), "a");
  if (f == nullptr) {
    return Status::Unavailable("cannot open shard journal " + path_);
  }
  const bool ok = std::fputs(line.c_str(), f) >= 0 && std::fputc('\n', f) >= 0;
  std::fflush(f);
  std::fclose(f);
  return ok ? Status::Ok()
            : Status::Unavailable("cannot append to shard journal " + path_);
}

Result<std::vector<std::string>> FileShardJournal::ReadAll() {
  std::vector<std::string> lines;
  std::FILE* f = std::fopen(path_.c_str(), "r");
  if (f == nullptr) return lines;  // no journal yet: nothing pending
  std::string line;
  for (int c = std::fgetc(f); c != EOF; c = std::fgetc(f)) {
    if (c == '\n') {
      lines.push_back(std::move(line));
      line.clear();
    } else {
      line.push_back(static_cast<char>(c));
    }
  }
  if (!line.empty()) lines.push_back(std::move(line));
  std::fclose(f);
  return lines;
}

// --- ShardManager ---

ShardManager::ShardManager(net::Transport& transport, NodeId client_node,
                           ShardMapAuthority& authority, Options options)
    : transport_(&transport),
      client_node_(client_node),
      authority_(&authority),
      options_(std::move(options)),
      txn_ids_(client_node),
      ctl_(transport, client_node, options_.metrics),
      committer_(ctl_, kTxnMethods, options_.rpc_retry) {
  if (options_.journal != nullptr) {
    journal_ = options_.journal;
  } else {
    own_journal_ = std::make_unique<MemShardJournal>();
    journal_ = own_journal_.get();
  }
  MetricsRegistry& metrics = ctl_.metrics();
  splits_ = &metrics.counter("shardmgr.splits");
  merges_ = &metrics.counter("shardmgr.merges");
  copy_txns_ = &metrics.counter("shardmgr.copy.txns");
  copied_ = &metrics.counter("shardmgr.copy.entries");
  retired_ = &metrics.counter("shardmgr.retired.entries");
}

std::unique_ptr<DirectorySuite> ShardManager::MakeSuite(
    const QuorumConfig& config) {
  SuiteOptions o;
  o.config = config;
  o.rpc_retry = options_.rpc_retry;
  o.metrics = options_.metrics;
  o.txn_ids = &txn_ids_;
  o.metric_scope = "shardmgr";
  return std::make_unique<DirectorySuite>(*transport_, client_node_,
                                          std::move(o));
}

Status ShardManager::FinishStep(int step) {
  REPDIR_RETURN_IF_ERROR(journal_->Append("STEP " + std::to_string(step)));
  if (options_.fail_after_step == step) {
    return Status::Aborted("injected crash after step " +
                           std::to_string(step));
  }
  return Status::Ok();
}

Status ShardManager::InstallUpTo(ShardMap map) {
  if (authority_->version() >= map.version) return Status::Ok();
  return authority_->Install(std::move(map));
}

Status ShardManager::Configure(const QuorumConfig& config, const UserKey& low,
                               bool has_high, const UserKey& high,
                               std::uint64_t epoch) {
  ShardConfigRequest req;
  req.low = low;
  req.has_high = has_high;
  req.high = high;
  req.epoch = epoch;
  const std::uint32_t attempts =
      options_.rpc_retry.max_attempts == 0 ? 1 : options_.rpc_retry.max_attempts;
  for (const NodeId node : config.Nodes()) {
    Status st = Status::Unavailable("not attempted");
    for (std::uint32_t a = 0; a < attempts && !st.ok(); ++a) {
      st = ctl_.Call<net::Empty>(node, kConfigureShard, req).status();
    }
    if (!st.ok()) {
      return Status::Unavailable("configure shard bounds on node " +
                                 std::to_string(node) + ": " + st.ToString());
    }
  }
  return Status::Ok();
}

Status ShardManager::Retire(const QuorumConfig& config, const UserKey& low) {
  const TxnId id = txn_ids_.Next();
  const std::vector<NodeId> node_list = config.Nodes();
  const std::set<NodeId> nodes(node_list.begin(), node_list.end());
  RetireRangeRequest req;
  req.low = low;
  for (const NodeId node : nodes) {
    const auto r = ctl_.Call<CoalesceReply>(node, kRetireRange, req, id);
    if (!r.ok()) {
      committer_.Abort(id, nodes);
      return r.status();
    }
    retired_->Increment(r->erased.size());
  }
  return committer_.Commit(id, nodes);
}

Status ShardManager::CopyRange(DirectorySuite& source, DirectorySuite& target,
                               const UserKey& low, bool has_high,
                               const UserKey& high) {
  // One chunk = one cross-shard transaction: read locks on the source hold
  // racing writers off the chunk's keys until the 2PC decides, and the
  // target insert-if-absent keeps any value a dual-writing router landed
  // there first (it is newer by definition).
  const auto chunk = [&](UserKey* cursor, bool* include_cursor,
                         bool* done) -> Status {
    const TxnId id = txn_ids_.Next();
    SuiteTxn s = source.BeginAt(id);
    SuiteTxn t = target.BeginAt(id);
    Status st = Status::Ok();
    std::size_t moved = 0;
    const auto ship = [&](const UserKey& key, const Value& value) -> Status {
      const auto current = t.Lookup(key);
      if (!current.ok()) return current.status();
      if (current->found) return Status::Ok();
      REPDIR_RETURN_IF_ERROR(t.Insert(key, value));
      copied_->Increment();
      return Status::Ok();
    };
    if (*include_cursor) {
      *include_cursor = false;
      const auto l = s.Lookup(*cursor);
      if (!l.ok()) {
        st = l.status();
      } else if (l->found) {
        st = ship(*cursor, l->value);
        ++moved;
      }
    }
    while (st.ok() && moved < options_.copy_chunk) {
      const auto next = s.NextKey(*cursor);
      if (!next.ok()) {
        st = next.status();
        break;
      }
      if (!next->found || (has_high && next->key >= high)) {
        *done = true;
        break;
      }
      *cursor = next->key;
      st = ship(next->key, next->value);
      ++moved;
    }
    if (!st.ok()) {
      s.Abort();
      t.Abort();
      return st;
    }
    const DirectorySuite::Handoff hs = s.Detach();
    const DirectorySuite::Handoff ht = t.Detach();
    std::set<NodeId> participants = hs.participants;
    participants.insert(ht.participants.begin(), ht.participants.end());
    copy_txns_->Increment();
    if (participants.empty()) return Status::Ok();
    return hs.wrote || ht.wrote
               ? committer_.Commit(id, participants)
               : committer_.CommitReadOnly(id, participants);
  };

  UserKey cursor = low;
  bool include_cursor = true;
  bool done = false;
  while (!done) {
    const UserKey chunk_cursor = cursor;
    const bool chunk_include = include_cursor;
    Status st = Status::Ok();
    for (int attempt = 0;; ++attempt) {
      cursor = chunk_cursor;
      include_cursor = chunk_include;
      done = false;
      st = chunk(&cursor, &include_cursor, &done);
      if (st.ok()) break;
      const bool retriable = st.code() == StatusCode::kAborted ||
                             st.code() == StatusCode::kUnavailable;
      if (!retriable || attempt >= options_.copy_retries) return st;
    }
  }
  return Status::Ok();
}

// --- Split ---

Status ShardManager::Split(ShardId source, const UserKey& fence,
                           ShardId target, QuorumConfig target_config) {
  const auto map = authority_->Get();
  if (map == nullptr) {
    return Status::FailedPrecondition("no shard map installed");
  }
  const ShardEntry* src = map->Find(source);
  if (src == nullptr) {
    return Status::NotFound("source shard " + std::to_string(source) +
                            " not in map");
  }
  if (src->migrating) {
    return Status::FailedPrecondition("source shard already migrating");
  }
  if (map->Find(target) != nullptr || map->FindStaging(target) != nullptr) {
    return Status::AlreadyExists("target shard id in use");
  }
  if (fence <= src->low) {
    return Status::InvalidArgument("fence not inside source range");
  }
  for (std::size_t i = 0; i < map->entries.size(); ++i) {
    if (map->entries[i].shard != source) continue;
    UserKey high;
    if (map->HighBound(i, &high) && fence >= high) {
      return Status::InvalidArgument("fence not inside source range");
    }
  }
  REPDIR_RETURN_IF_ERROR(target_config.Validate());

  SplitPlan plan;
  plan.source = source;
  plan.target = target;
  plan.base = map->version;
  plan.fence = fence;
  plan.target_config = std::move(target_config);

  ByteWriter w;
  w.PutU32(plan.source);
  w.PutU32(plan.target);
  w.PutU64(plan.base);
  w.PutString(plan.fence);
  EncodeConfig(w, plan.target_config);
  REPDIR_RETURN_IF_ERROR(journal_->Append("SPLIT " + ToHex(w.TakeString())));
  return RunSplit(plan, 1);
}

Status ShardManager::RunSplit(const SplitPlan& plan, int from_step) {
  // Geometry of the move, derived from whatever map version the operation
  // reached: the moving range is [fence, H) where H is the upper bound of
  // the source before the flip and of the target after it.
  const auto view = [&]() -> Result<std::pair<ShardEntry, std::pair<bool, UserKey>>> {
    const auto map = authority_->Get();
    const ShardEntry* src = map->Find(plan.source);
    if (src == nullptr) {
      return Status::Internal("source shard vanished mid-split");
    }
    const ShardId edge =
        map->Find(plan.target) != nullptr ? plan.target : plan.source;
    UserKey high;
    bool has_high = false;
    for (std::size_t i = 0; i < map->entries.size(); ++i) {
      if (map->entries[i].shard == edge) {
        has_high = map->HighBound(i, &high);
        break;
      }
    }
    return std::make_pair(*src, std::make_pair(has_high, high));
  };

  REPDIR_ASSIGN_OR_RETURN(auto geometry, view());
  const ShardEntry src = geometry.first;
  const bool has_high = geometry.second.first;
  const UserKey high = geometry.second.second;

  if (from_step <= 1) {
    // 1. Target replicas learn their future range at the migration epoch.
    REPDIR_RETURN_IF_ERROR(Configure(plan.target_config, plan.fence, has_high,
                                     high, plan.base + 1));
    REPDIR_RETURN_IF_ERROR(FinishStep(1));
  }
  if (from_step <= 2) {
    // 2. Publish the migrating map: routers start dual-writing [fence, H).
    if (authority_->version() < plan.base + 1) {
      ShardMap next = *authority_->Get();
      next.version = plan.base + 1;
      for (ShardEntry& e : next.entries) {
        if (e.shard != plan.source) continue;
        e.migrating = true;
        e.migrate_low = plan.fence;
        e.migrate_has_high = has_high;
        e.migrate_high = high;
        e.migrate_to = plan.target;
      }
      StagingShard staging;
      staging.shard = plan.target;
      staging.config = plan.target_config;
      staging.low = plan.fence;
      staging.has_high = has_high;
      staging.high = high;
      next.staging.push_back(std::move(staging));
      REPDIR_RETURN_IF_ERROR(InstallUpTo(std::move(next)));
    }
    REPDIR_RETURN_IF_ERROR(FinishStep(2));
  }
  if (from_step <= 3) {
    // 3. Source replicas advance to the migration epoch: clients still
    // routing by the base map bounce (kWrongShard) and refresh, so every
    // surviving write in the moving range is a dual-write from here on.
    REPDIR_RETURN_IF_ERROR(
        Configure(src.config, src.low, has_high, high, plan.base + 1));
    REPDIR_RETURN_IF_ERROR(FinishStep(3));
  }
  if (from_step <= 4) {
    // 4. Copy the moving range (idempotent: insert-if-absent per chunk).
    const auto source_suite = MakeSuite(src.config);
    const auto target_suite = MakeSuite(plan.target_config);
    source_suite->set_shard_epoch(plan.base + 1);
    target_suite->set_shard_epoch(plan.base + 1);
    REPDIR_RETURN_IF_ERROR(
        CopyRange(*source_suite, *target_suite, plan.fence, has_high, high));
    REPDIR_RETURN_IF_ERROR(FinishStep(4));
  }
  if (from_step <= 5) {
    // 5. The flip. Order matters: fence the source FIRST (old-epoch
    // clients can no longer read soon-stale data or land un-mirrored
    // writes; their in-flight transactions die at PREPARE), then raise the
    // target and publish the new map, and only then narrow the source's
    // bounds (narrowing earlier would reject dual-writers' inserts).
    REPDIR_RETURN_IF_ERROR(
        Configure(src.config, src.low, has_high, high, plan.base + 2));
    REPDIR_RETURN_IF_ERROR(Configure(plan.target_config, plan.fence, has_high,
                                     high, plan.base + 2));
    if (authority_->version() < plan.base + 2) {
      ShardMap next = *authority_->Get();
      next.version = plan.base + 2;
      next.staging.clear();
      for (std::size_t i = 0; i < next.entries.size(); ++i) {
        ShardEntry& e = next.entries[i];
        if (e.shard != plan.source) continue;
        e.migrating = false;
        e.migrate_low.clear();
        e.migrate_has_high = false;
        e.migrate_high.clear();
        e.migrate_to = 0;
        ShardEntry fresh;
        fresh.shard = plan.target;
        fresh.low = plan.fence;
        fresh.config = plan.target_config;
        next.entries.insert(
            next.entries.begin() + static_cast<std::ptrdiff_t>(i) + 1,
            std::move(fresh));
        break;
      }
      REPDIR_RETURN_IF_ERROR(InstallUpTo(std::move(next)));
    }
    REPDIR_RETURN_IF_ERROR(
        Configure(src.config, src.low, true, plan.fence, plan.base + 2));
    REPDIR_RETURN_IF_ERROR(FinishStep(5));
  }
  if (from_step <= 6) {
    // 6. Retire the moved range from the source (transactional; preserves
    // the retained range's gap versions bit-for-bit).
    REPDIR_RETURN_IF_ERROR(Retire(src.config, plan.fence));
    REPDIR_RETURN_IF_ERROR(FinishStep(6));
  }
  REPDIR_RETURN_IF_ERROR(journal_->Append("DONE"));
  splits_->Increment();
  return Status::Ok();
}

// --- Merge ---

Status ShardManager::Merge(ShardId victim) {
  const auto map = authority_->Get();
  if (map == nullptr) {
    return Status::FailedPrecondition("no shard map installed");
  }
  std::size_t idx = map->entries.size();
  for (std::size_t i = 0; i < map->entries.size(); ++i) {
    if (map->entries[i].shard == victim) {
      idx = i;
      break;
    }
  }
  if (idx == map->entries.size()) {
    return Status::NotFound("victim shard not in map");
  }
  if (idx == 0) {
    return Status::FailedPrecondition(
        "first shard has no left neighbor to merge into");
  }
  const ShardEntry& v = map->entries[idx];
  const ShardEntry& left = map->entries[idx - 1];
  if (v.migrating || left.migrating) {
    return Status::FailedPrecondition("shard already migrating");
  }

  MergePlan plan;
  plan.victim = victim;
  plan.left = left.shard;
  plan.base = map->version;
  plan.victim_low = v.low;
  plan.victim_has_high = map->HighBound(idx, &plan.victim_high);
  plan.victim_config = v.config;

  ByteWriter w;
  w.PutU32(plan.victim);
  w.PutU32(plan.left);
  w.PutU64(plan.base);
  w.PutString(plan.victim_low);
  w.PutBool(plan.victim_has_high);
  w.PutString(plan.victim_high);
  EncodeConfig(w, plan.victim_config);
  REPDIR_RETURN_IF_ERROR(journal_->Append("MERGE " + ToHex(w.TakeString())));
  return RunMerge(plan, 1);
}

Status ShardManager::RunMerge(const MergePlan& plan, int from_step) {
  const auto map = authority_->Get();
  const ShardEntry* left = map->Find(plan.left);
  if (left == nullptr) {
    return Status::Internal("merge target shard vanished");
  }
  const ShardEntry left_entry = *left;

  if (from_step <= 1) {
    // 1. Widen the surviving shard's replica bounds so copied and
    // dual-written keys from the victim's range pass its insert tripwire.
    REPDIR_RETURN_IF_ERROR(Configure(left_entry.config, left_entry.low,
                                     plan.victim_has_high, plan.victim_high,
                                     plan.base + 1));
    REPDIR_RETURN_IF_ERROR(FinishStep(1));
  }
  if (from_step <= 2) {
    // 2. Publish the migrating map: the victim's whole range dual-writes
    // into the left neighbor.
    if (authority_->version() < plan.base + 1) {
      ShardMap next = *authority_->Get();
      next.version = plan.base + 1;
      for (ShardEntry& e : next.entries) {
        if (e.shard != plan.victim) continue;
        e.migrating = true;
        e.migrate_low = plan.victim_low;
        e.migrate_has_high = plan.victim_has_high;
        e.migrate_high = plan.victim_high;
        e.migrate_to = plan.left;
      }
      REPDIR_RETURN_IF_ERROR(InstallUpTo(std::move(next)));
    }
    REPDIR_RETURN_IF_ERROR(FinishStep(2));
  }
  if (from_step <= 3) {
    // 3. Victim replicas advance to the migration epoch (fence base-map
    // clients).
    REPDIR_RETURN_IF_ERROR(Configure(plan.victim_config, plan.victim_low,
                                     plan.victim_has_high, plan.victim_high,
                                     plan.base + 1));
    REPDIR_RETURN_IF_ERROR(FinishStep(3));
  }
  if (from_step <= 4) {
    // 4. Copy the victim's entries into the left neighbor.
    const auto victim_suite = MakeSuite(plan.victim_config);
    const auto left_suite = MakeSuite(left_entry.config);
    victim_suite->set_shard_epoch(plan.base + 1);
    left_suite->set_shard_epoch(plan.base + 1);
    REPDIR_RETURN_IF_ERROR(CopyRange(*victim_suite, *left_suite,
                                     plan.victim_low, plan.victim_has_high,
                                     plan.victim_high));
    REPDIR_RETURN_IF_ERROR(FinishStep(4));
  }
  if (from_step <= 5) {
    // 5. The flip, victim fenced first (same ordering rationale as the
    // split's step 5), then the map without it, then the victim's bounds
    // collapse to an empty range.
    REPDIR_RETURN_IF_ERROR(Configure(plan.victim_config, plan.victim_low,
                                     plan.victim_has_high, plan.victim_high,
                                     plan.base + 2));
    REPDIR_RETURN_IF_ERROR(Configure(left_entry.config, left_entry.low,
                                     plan.victim_has_high, plan.victim_high,
                                     plan.base + 2));
    if (authority_->version() < plan.base + 2) {
      ShardMap next = *authority_->Get();
      next.version = plan.base + 2;
      for (std::size_t i = 0; i < next.entries.size(); ++i) {
        if (next.entries[i].shard != plan.victim) continue;
        next.entries.erase(next.entries.begin() +
                           static_cast<std::ptrdiff_t>(i));
        break;
      }
      REPDIR_RETURN_IF_ERROR(InstallUpTo(std::move(next)));
    }
    REPDIR_RETURN_IF_ERROR(Configure(plan.victim_config, plan.victim_low,
                                     true, plan.victim_low, plan.base + 2));
    REPDIR_RETURN_IF_ERROR(FinishStep(5));
  }
  if (from_step <= 6) {
    // 6. Retire everything the victim held.
    REPDIR_RETURN_IF_ERROR(Retire(plan.victim_config, plan.victim_low));
    REPDIR_RETURN_IF_ERROR(FinishStep(6));
  }
  REPDIR_RETURN_IF_ERROR(journal_->Append("DONE"));
  merges_->Increment();
  return Status::Ok();
}

// --- Resume / reconfigure ---

Status ShardManager::Resume() {
  REPDIR_ASSIGN_OR_RETURN(const std::vector<std::string> lines,
                          journal_->ReadAll());
  std::string kind;
  std::string hex;
  int last_step = 0;
  for (const std::string& line : lines) {
    if (line.rfind("SPLIT ", 0) == 0) {
      kind = "SPLIT";
      hex = line.substr(6);
      last_step = 0;
    } else if (line.rfind("MERGE ", 0) == 0) {
      kind = "MERGE";
      hex = line.substr(6);
      last_step = 0;
    } else if (line.rfind("STEP ", 0) == 0) {
      last_step = std::atoi(line.c_str() + 5);
    } else if (line == "DONE") {
      kind.clear();
    }
  }
  if (kind.empty()) return Status::Ok();

  std::string bytes;
  REPDIR_RETURN_IF_ERROR(FromHex(hex, &bytes));
  ByteReader r(bytes);
  if (kind == "SPLIT") {
    SplitPlan plan;
    REPDIR_RETURN_IF_ERROR(r.GetU32(plan.source));
    REPDIR_RETURN_IF_ERROR(r.GetU32(plan.target));
    REPDIR_RETURN_IF_ERROR(r.GetU64(plan.base));
    REPDIR_RETURN_IF_ERROR(r.GetString(plan.fence));
    REPDIR_RETURN_IF_ERROR(DecodeConfig(r, &plan.target_config));
    return RunSplit(plan, last_step + 1);
  }
  MergePlan plan;
  REPDIR_RETURN_IF_ERROR(r.GetU32(plan.victim));
  REPDIR_RETURN_IF_ERROR(r.GetU32(plan.left));
  REPDIR_RETURN_IF_ERROR(r.GetU64(plan.base));
  REPDIR_RETURN_IF_ERROR(r.GetString(plan.victim_low));
  REPDIR_RETURN_IF_ERROR(r.GetBool(plan.victim_has_high));
  REPDIR_RETURN_IF_ERROR(r.GetString(plan.victim_high));
  REPDIR_RETURN_IF_ERROR(DecodeConfig(r, &plan.victim_config));
  return RunMerge(plan, last_step + 1);
}

Status ShardManager::ReconfigureAll() {
  const auto map = authority_->Get();
  if (map == nullptr) {
    return Status::FailedPrecondition("no shard map installed");
  }
  for (std::size_t i = 0; i < map->entries.size(); ++i) {
    const ShardEntry& e = map->entries[i];
    UserKey high;
    const bool has_high = map->HighBound(i, &high);
    REPDIR_RETURN_IF_ERROR(
        Configure(e.config, e.low, has_high, high, map->version));
  }
  return Status::Ok();
}

}  // namespace repdir::rep
