#include "rep/reconciler.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

namespace repdir::rep {

namespace {

constexpr txn::TxnControlMethods kTxnMethods{kPrepare, kCommit, kAbortTxn};

using storage::RepKey;
using storage::StoredEntry;

std::string Scope(const std::string& metric_scope) {
  std::string s = "suite.";
  if (!metric_scope.empty()) s += metric_scope + ".";
  return s + "reconcile.";
}

}  // namespace

Reconciler::Reconciler(net::Transport& transport, NodeId client_node,
                       QuorumConfig config, Options options)
    : config_(std::move(config)),
      options_(std::move(options)),
      client_(transport, client_node, options_.metrics),
      own_txn_ids_(client_node),
      txn_ids_(options_.txn_ids != nullptr ? options_.txn_ids
                                           : &own_txn_ids_),
      committer_(client_, kTxnMethods, options_.rpc_retry),
      scope_(Scope(options_.metric_scope)),
      runs_(&client_.metrics().counter(scope_ + "runs")),
      pairs_synced_(&client_.metrics().counter(scope_ + "pairs_synced")),
      pair_errors_(&client_.metrics().counter(scope_ + "pair_errors")),
      ranges_checked_(&client_.metrics().counter(scope_ + "ranges_checked")),
      ranges_mismatched_(
          &client_.metrics().counter(scope_ + "ranges_mismatched")),
      repair_txns_(&client_.metrics().counter(scope_ + "repair_txns")),
      repair_aborts_(&client_.metrics().counter(scope_ + "repair_aborts")),
      entries_installed_(
          &client_.metrics().counter(scope_ + "entries_installed")),
      ghosts_collected_(
          &client_.metrics().counter(scope_ + "ghosts_collected")),
      gap_bumps_(&client_.metrics().counter(scope_ + "gap_bumps")),
      skipped_newer_(&client_.metrics().counter(scope_ + "skipped_newer")),
      digest_bytes_(&client_.metrics().counter(scope_ + "digest_bytes")),
      repair_bytes_(&client_.metrics().counter(scope_ + "repair_bytes")) {
  if (options_.fanout < 2) options_.fanout = 2;
  if (options_.leaf_entries == 0) options_.leaf_entries = 1;
  if (options_.max_depth == 0) options_.max_depth = 1;
}

Status Reconciler::SyncPair(NodeId source, NodeId target) {
  struct Item {
    RepKey low;
    RepKey high;
    std::uint32_t depth = 0;
  };
  std::vector<Item> stack;
  stack.push_back({RepKey::Low(), RepKey::High(), 0});
  bool clean = true;

  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();

    RangeDigestRequest sreq;
    sreq.low = item.low;
    sreq.high = item.high;
    sreq.fanout = options_.fanout;
    auto sres = client_.Call<RangeDigestReply>(source, kRangeDigest, sreq);
    if (!sres.ok()) return sres.status();
    std::uint64_t bytes = net::EncodedWireSize(sreq) +
                          net::EncodedWireSize(*sres);

    RangeDigestSpansRequest treq;
    treq.spans.reserve(sres->parts.size());
    for (const auto& part : sres->parts) {
      treq.spans.push_back({part.low, part.high});
    }
    auto tres = client_.Call<RangeDigestReply>(target, kRangeDigestSpans,
                                               treq);
    if (!tres.ok()) return tres.status();
    bytes += net::EncodedWireSize(treq) + net::EncodedWireSize(*tres);
    stats_.digest_bytes += bytes;
    digest_bytes_->Increment(bytes);

    if (tres->parts.size() != sres->parts.size()) {
      return Status::Internal("digest span count mismatch from node " +
                              std::to_string(target));
    }
    for (std::size_t i = 0; i < sres->parts.size(); ++i) {
      const storage::RangeDigest& sp = sres->parts[i];
      ++stats_.ranges_checked;
      ranges_checked_->Increment();
      if (sp == tres->parts[i]) continue;
      ++stats_.ranges_mismatched;
      ranges_mismatched_->Increment();
      // A single-child reply cannot be split further (the source holds at
      // most one entry in the segment); repair it directly.
      const bool leaf = sp.count <= options_.leaf_entries ||
                        sres->parts.size() <= 1 ||
                        item.depth + 1 >= options_.max_depth;
      if (leaf) {
        if (!RepairSegment(source, target, sp.low, sp.high).ok()) {
          clean = false;  // counted in repair_aborts; keep walking
        }
      } else {
        stack.push_back({sp.low, sp.high, item.depth + 1});
      }
    }
  }
  if (!clean) {
    return Status::Aborted("reconcile pair " + std::to_string(source) +
                           " -> " + std::to_string(target) +
                           " left unrepaired segments");
  }
  return Status::Ok();
}

Status Reconciler::RepairSegment(NodeId source, NodeId target,
                                 const RepKey& low, const RepKey& high) {
  const TxnId txn = txn_ids_->Next();
  std::set<NodeId> participants;
  bool wrote = false;
  // Effects staged until the commit succeeds (exact-effect accounting).
  std::uint64_t installed = 0;
  std::uint64_t ghosts = 0;
  std::uint64_t bumps = 0;
  std::uint64_t skipped = 0;
  std::uint64_t bytes = 0;

  ++stats_.repair_txns;
  repair_txns_->Increment();

  const auto fail = [&](Status st) {
    committer_.Abort(txn, participants);
    if (options_.decision_hook) options_.decision_hook(txn, false);
    ++stats_.repair_aborts;
    repair_aborts_->Increment();
    stats_.repair_bytes += bytes;
    repair_bytes_->Increment(bytes);
    return st;
  };

  FetchRangeRequest freq;
  freq.low = low;
  freq.high = high;
  participants.insert(source);
  auto sres = client_.Call<FetchRangeReply>(source, kFetchRange, freq, txn);
  if (!sres.ok()) return fail(sres.status());
  participants.insert(target);
  auto tres = client_.Call<FetchRangeReply>(target, kFetchRange, freq, txn);
  if (!tres.ok()) return fail(tres.status());
  bytes += 2 * net::EncodedWireSize(freq) + net::EncodedWireSize(*sres) +
           net::EncodedWireSize(*tres);
  const FetchRangeReply& src = *sres;
  const FetchRangeReply& tgt = *tres;

  // Client-side model of the target segment, maintained through the
  // repairs below. Both fetches hold read locks until the 2PC decision, so
  // the model - and every plan derived from it - stays true while we work.
  std::map<RepKey, StoredEntry> tentries;
  if (tgt.has_low_entry) tentries[tgt.low_entry.key] = tgt.low_entry;
  for (const StoredEntry& e : tgt.entries) tentries[e.key] = e;
  // Gap versions by start point: `low` plus every target entry key below
  // `high` (the gap leaving an entry at `high` belongs to the next
  // segment). Between starts, the version at a point is that of the
  // greatest start at or below it.
  std::map<RepKey, Version> pieces;
  pieces[low] = tgt.low_gap;
  for (const StoredEntry& e : tgt.entries) {
    if (e.key < high) pieces[e.key] = e.gap_after;
  }
  const auto piece_at = [&](const RepKey& k) {
    auto it = pieces.upper_bound(k);
    assert(it != pieces.begin());
    return (--it)->second;
  };

  // --- Install leg: copy source entries the target lacks. ---
  std::vector<StoredEntry> install;
  if (src.has_low_entry) install.push_back(src.low_entry);
  install.insert(install.end(), src.entries.begin(), src.entries.end());

  for (const StoredEntry& e : install) {
    // For keys above `low`, the fetched state decides locally. The entry
    // AT `low` sits in the gap below the segment, which we did not fetch -
    // the server-side guard arbitrates that one alone.
    if (e.key != low) {
      const auto it = tentries.find(e.key);
      if (it != tentries.end() && it->second.version >= e.version) {
        if (it->second.version > e.version) {
          ++skipped;  // target is ahead: a newer committed write
        }
        continue;  // anchor already present
      }
      if (it == tentries.end() && piece_at(e.key) > e.version) {
        ++skipped;  // a newer committed gap (delete) supersedes this entry
        continue;
      }
    }
    GuardedInsertRequest ireq;
    ireq.key = e.key;
    ireq.version = e.version;
    ireq.value = e.value;
    ireq.expected_version = e.version;
    auto ir = client_.Call<net::Empty>(target, kGuardedInsert, ireq, txn);
    bytes += net::EncodedWireSize(ireq);
    if (ir.ok()) {
      bytes += net::EncodedWireSize(*ir);
      ++installed;
      wrote = true;
      // Insert splits (or overwrites within) the containing gap; the gap
      // partition's versions are unchanged.
      StoredEntry ne;
      ne.key = e.key;
      ne.version = e.version;
      ne.value = e.value;
      const auto it = tentries.find(e.key);
      if (it != tentries.end()) {
        ne.gap_after = it->second.gap_after;
      } else if (e.key == low) {
        ne.gap_after = tgt.low_gap;
      } else {
        ne.gap_after = piece_at(e.key);
        if (e.key < high) pieces[e.key] = ne.gap_after;
      }
      tentries[e.key] = ne;
    } else if (ir.status().code() == StatusCode::kVersionMismatch) {
      ++skipped;  // lost to state outside the fetched segment (key == low)
    } else if (ir.status().code() == StatusCode::kWrongShard) {
      // Target does not own the key (migration in flight). Leave it
      // absent: adjacent spans lose their anchor and are skipped below, so
      // a retiring range is never re-spread.
    } else {
      return fail(ir.status());
    }
  }

  // --- Coalesce leg: bump stale gaps, erase ghosts. ---
  // Source gap spans: consecutive source entry keys (plus the segment
  // bounds), each with the source's committed gap version.
  std::vector<RepKey> bounds;
  bounds.push_back(low);
  for (const StoredEntry& e : src.entries) bounds.push_back(e.key);
  if (bounds.back() != high) bounds.push_back(high);

  const auto present = [&](const RepKey& k) {
    return k.is_sentinel() || tentries.count(k) != 0;
  };

  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    const RepKey& a = bounds[i];
    const RepKey& b = bounds[i + 1];
    const Version g = i == 0 ? src.low_gap : src.entries[i - 1].gap_after;
    // DirRepCoalesce needs stored entries at both bounds; an anchor we
    // could not materialize (newer target delete, wrong shard) skips the
    // span - a later pass against a caught-up source will close it.
    if (!present(a) || !present(b)) continue;

    // Target entries inside (a, b) with version >= g are NOT ghosts of
    // this gap (newer committed writes, or an exact tie we leave alone);
    // they bound sub-spans so the coalesce never touches them.
    std::vector<RepKey> sub;
    sub.push_back(a);
    for (auto it = tentries.upper_bound(a);
         it != tentries.end() && it->first < b; ++it) {
      if (it->second.version >= g) sub.push_back(it->first);
    }
    sub.push_back(b);

    for (std::size_t j = 0; j + 1 < sub.size(); ++j) {
      const RepKey& p = sub[j];
      const RepKey& q = sub[j + 1];
      // Ghosts: target entries strictly inside (p, q) - all of version
      // < g by construction, i.e. superseded by the committed gap.
      bool have_ghosts = false;
      {
        auto it = tentries.upper_bound(p);
        have_ghosts = it != tentries.end() && it->first < q;
      }
      // Target gap pieces starting in [p, q): the versions the coalesce
      // would overwrite.
      Version min_piece = g;
      Version max_piece = kLowestVersion;
      for (auto it = pieces.lower_bound(p);
           it != pieces.end() && it->first < q; ++it) {
        min_piece = std::min(min_piece, it->second);
        max_piece = std::max(max_piece, it->second);
      }
      if (max_piece > g) {
        ++skipped;  // target already committed a newer gap in here
        continue;
      }
      if (!have_ghosts && min_piece >= g) continue;  // already converged
      CoalesceRequest creq;
      creq.low = p;
      creq.high = q;
      creq.gap_version = g;
      auto cres = client_.Call<CoalesceReply>(target, kCoalesce, creq, txn);
      bytes += net::EncodedWireSize(creq);
      if (!cres.ok()) return fail(cres.status());
      bytes += net::EncodedWireSize(*cres);
      wrote = true;
      ++bumps;
      ghosts += cres->erased.size();
      for (const RepKey& k : cres->erased) {
        tentries.erase(k);
        pieces.erase(k);
      }
      pieces[p] = g;
    }
  }

  const Status decision = wrote ? committer_.Commit(txn, participants)
                                : committer_.CommitReadOnly(txn, participants);
  if (options_.decision_hook) options_.decision_hook(txn, decision.ok());
  stats_.repair_bytes += bytes;
  repair_bytes_->Increment(bytes);
  if (!decision.ok()) {
    ++stats_.repair_aborts;
    repair_aborts_->Increment();
    return decision;
  }
  stats_.entries_installed += installed;
  entries_installed_->Increment(installed);
  stats_.ghosts_collected += ghosts;
  ghosts_collected_->Increment(ghosts);
  stats_.gap_bumps += bumps;
  gap_bumps_->Increment(bumps);
  stats_.skipped_newer += skipped;
  skipped_newer_->Increment(skipped);
  return Status::Ok();
}

Status Reconciler::SyncReplica(NodeId target) {
  Votes have = config_.VotesOf(target);
  const Votes need = config_.read_quorum();
  Status last = Status::Ok();
  for (const Replica& r : config_.replicas()) {
    if (have >= need) break;
    if (r.node == target || r.votes == 0) continue;
    const Status st = SyncPair(r.node, target);
    if (st.ok()) {
      ++stats_.pairs_synced;
      pairs_synced_->Increment();
      have += r.votes;
    } else {
      ++stats_.pair_errors;
      pair_errors_->Increment();
      last = st;
    }
  }
  if (have < need) {
    return Status::Unavailable(
        "replica " + std::to_string(target) + " folded only " +
        std::to_string(have) + "/" + std::to_string(need) +
        " votes" + (last.ok() ? "" : ": " + last.message()));
  }
  return Status::Ok();
}

Status Reconciler::RunOnce() {
  ++stats_.runs;
  runs_->Increment();
  for (const NodeId node : config_.Nodes()) {
    if (!SyncReplica(node).ok()) {
      ++stats_.replicas_failed;
    }
  }
  return Status::Ok();
}

// --- BackgroundReconciler ---

BackgroundReconciler::BackgroundReconciler(Reconciler& reconciler,
                                           DurationMicros interval_micros)
    : reconciler_(&reconciler), interval_micros_(interval_micros) {
  thread_ = std::thread([this] { Loop(); });
}

BackgroundReconciler::BackgroundReconciler(Reconciler& reconciler,
                                           ReconcileIntervalPolicy policy)
    : reconciler_(&reconciler),
      adaptive_(true),
      policy_(policy),
      last_stats_(reconciler.stats()),
      interval_micros_(policy.current()) {
  thread_ = std::thread([this] { Loop(); });
}

DurationMicros BackgroundReconciler::current_interval_micros() const {
  std::lock_guard<std::mutex> lk(mu_);
  return interval_micros_;
}

void BackgroundReconciler::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void BackgroundReconciler::Loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    if (cv_.wait_for(lk, std::chrono::microseconds(interval_micros_),
                     [this] { return stop_; })) {
      return;
    }
    lk.unlock();
    (void)reconciler_->RunOnce();
    DurationMicros next = 0;
    if (adaptive_) {
      // The reconciler is only driven from this thread while the loop
      // runs, so reading its stats here is race-free.
      const ReconcileStats& now = reconciler_->stats();
      next = policy_.OnPass(ReconcileIntervalPolicy::FoundWork(
          last_stats_, now));
      last_stats_ = now;
    }
    lk.lock();
    if (adaptive_) interval_micros_ = next;
  }
}

}  // namespace repdir::rep
