#include "rep/availability.h"

#include <cassert>

namespace repdir::rep {

AvailabilityPoint ExactAvailability(const QuorumConfig& config, double p_up) {
  return ExactAvailability(
      config, std::vector<double>(config.replicas().size(), p_up));
}

AvailabilityPoint ExactAvailability(const QuorumConfig& config,
                                    const std::vector<double>& p_up) {
  const auto& replicas = config.replicas();
  assert(p_up.size() == replicas.size());
  assert(replicas.size() <= 30 && "enumeration limited to small suites");

  AvailabilityPoint point;
  const std::uint32_t n = static_cast<std::uint32_t>(replicas.size());
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    double prob = 1.0;
    Votes up_votes = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        prob *= p_up[i];
        up_votes += replicas[i].votes;
      } else {
        prob *= 1.0 - p_up[i];
      }
    }
    const bool read_ok = up_votes >= config.read_quorum();
    const bool write_ok = up_votes >= config.write_quorum();
    if (read_ok) point.read += prob;
    if (write_ok) point.write += prob;
    if (read_ok && write_ok) point.modify += prob;
  }
  return point;
}

AvailabilityPoint SimulatedAvailability(const QuorumConfig& config,
                                        double p_up, std::uint64_t trials,
                                        Rng& rng) {
  const auto& replicas = config.replicas();
  std::uint64_t read_ok = 0;
  std::uint64_t write_ok = 0;
  std::uint64_t modify_ok = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    Votes up_votes = 0;
    for (const Replica& r : replicas) {
      if (rng.Chance(p_up)) up_votes += r.votes;
    }
    const bool r_ok = up_votes >= config.read_quorum();
    const bool w_ok = up_votes >= config.write_quorum();
    read_ok += r_ok;
    write_ok += w_ok;
    modify_ok += (r_ok && w_ok);
  }
  const double denom = static_cast<double>(trials);
  return AvailabilityPoint{read_ok / denom, write_ok / denom,
                           modify_ok / denom};
}

}  // namespace repdir::rep
