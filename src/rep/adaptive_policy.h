// Latency-aware quorum planning over the NodeScoreboard.
//
// The paper's weighted voting makes ANY set holding R (or W) votes a legal
// quorum, so quorum selection is pure policy - and the static policies in
// quorum_policy.h let one slow representative drag every wave it lands in.
// AdaptiveQuorumPolicy instead orders representatives by predicted
// completion cost (scoreboard EWMA latency x queue depth):
//
//   * The minimal voting prefix of the returned order is the minimal-vote
//     set with the lowest predicted makespan; CollectQuorum's prefix-wave
//     walk (and OptimisticQuorum's prefix cut) consume it directly, and
//     when the preferred set can't close the quota the walk naturally
//     falls through to the rest of the order - full fan-out as a fallback,
//     not a separate code path.
//   * Vote-equivalent candidates whose predictions sit within a tie band
//     are broken by power-of-two-choices (sample two, keep the one with
//     fewer outstanding requests) instead of deterministically, so a fleet
//     of clients sharing one scoreboard does not herd onto the single
//     cheapest node and create the very queue it was avoiding.
//   * Fairness: quarantined nodes sort last (they still appear - the
//     order must stay a permutation). A node whose quarantine has expired
//     is on probation and deliberately ranks FIRST, so the next operation
//     probes it; one success re-earns normal ranking (see scoreboard.h).
//
// Determinism: the tie-break Rng is seeded, and on deterministic
// transports the scoreboard's inputs (virtual-clock latencies) are
// reproducible, so runs with the same seed produce identical orders.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/scoreboard.h"
#include "rep/messages.h"
#include "rep/quorum_policy.h"

namespace repdir::rep {

class AdaptiveQuorumPolicy final : public QuorumPolicy {
 public:
  /// Candidates within `tie_band` (relative) of the cheapest prediction -
  /// plus a small absolute slack so all-unmeasured nodes tie - are
  /// considered vote-equivalent and broken by power-of-two-choices.
  AdaptiveQuorumPolicy(const QuorumConfig& config,
                       std::shared_ptr<net::NodeScoreboard> scoreboard,
                       std::uint64_t seed, double tie_band = 0.2)
      : nodes_(config.Nodes()),
        scoreboard_(std::move(scoreboard)),
        rng_(seed),
        tie_band_(tie_band) {}

  std::vector<NodeId> PreferenceOrder(OpClass op) override {
    // Reads are dominated by the inquiry, writes by the insert wave; score
    // with the matching method's EWMA (scoreboard falls back to the node's
    // overall EWMA for methods it has not seen).
    const net::MethodId method = op == OpClass::kRead
                                     ? static_cast<net::MethodId>(kLookup)
                                     : static_cast<net::MethodId>(kInsert);
    struct Cand {
      NodeId node;
      double score;
      std::uint32_t outstanding;
    };
    std::vector<Cand> active;
    std::vector<NodeId> quarantined;
    active.reserve(nodes_.size());
    for (const NodeId node : nodes_) {
      switch (scoreboard_->HealthOf(node)) {
        case net::NodeScoreboard::Health::kQuarantined:
          quarantined.push_back(node);
          break;
        case net::NodeScoreboard::Health::kProbation:
          // Probe priority: rank ahead of everything measured so exactly
          // the next wave re-tests the node instead of starving it.
          active.push_back({node, 0.0, scoreboard_->Outstanding(node)});
          break;
        case net::NodeScoreboard::Health::kHealthy:
          active.push_back({node, scoreboard_->Score(node, method),
                            scoreboard_->Outstanding(node)});
          break;
      }
    }

    std::vector<NodeId> order;
    order.reserve(nodes_.size());
    while (!active.empty()) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < active.size(); ++i) {
        if (active[i].score < active[best].score) best = i;
      }
      std::vector<std::size_t> band;
      const double cutoff = active[best].score * (1.0 + tie_band_) + 1.0;
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (active[i].score <= cutoff) band.push_back(i);
      }
      std::size_t chosen = band.front();
      if (band.size() > 1) {
        // Power of two choices: two uniform samples from the band, keep
        // the one with the shorter queue (ties keep the first sample, so
        // a quiescent board still mixes).
        const std::size_t a = band[rng_.Index(band.size())];
        const std::size_t b = band[rng_.Index(band.size())];
        chosen = active[b].outstanding < active[a].outstanding ? b : a;
      }
      order.push_back(active[chosen].node);
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(chosen));
    }
    // Quarantined nodes close the permutation: the prefix walk only
    // reaches them when the healthy set cannot close the quota.
    order.insert(order.end(), quarantined.begin(), quarantined.end());
    return order;
  }

 private:
  std::vector<NodeId> nodes_;
  std::shared_ptr<net::NodeScoreboard> scoreboard_;
  Rng rng_;
  double tie_band_;
};

}  // namespace repdir::rep
