// Analytic model of the delete-overhead statistics (paper §5: "initial
// work on an analytical treatment indicates that we can obtain similar
// results from simple analytic models").
//
// Setting: x-y-z suite with V one-vote representatives, write quorums drawn
// uniformly at random (the §4 simulation), and a workload in which each
// live entry receives on average `u` updates before it is deleted.
//
// Derivation. Consider the entry for key x at the moment it is deleted.
// Since its insert, it has been written by 1 + G quorum operations (its
// insert plus G updates), where G is geometric with mean u:
//     P(G = g) = (1/(1+u)) * (u/(1+u))^g.
// Each write lands on an independent uniform W-subset, so a given
// representative holds a copy of x with probability
//     p = 1 - E[(1 - W/V)^(1+G)] = 1 - q / (1 + u*(1-q)),   q = 1 - W/V.
//
// * Ghost creation: the delete coalesces x away at its W write-quorum
//   members; the other V - W representatives keep whatever copy they have,
//   each with probability p, so a delete mints (V-W)*p ghosts in
//   expectation. Ghosts die only by a later coalesce sweeping over them
//   (re-insertion of the exact key is negligible in a sparse key space), so
//   at steady state ghost deaths per delete = ghost births per delete:
//       deletions_while_coalescing ~= (V - W) * p.
// * Entries in ranges coalesced (per write-quorum representative): the
//   target itself (probability p) plus this representative's share of the
//   ghost deaths, (V-W)*p / W:
//       entries_in_ranges_coalesced ~= p * V / W.
// * Insertions while coalescing: each of the W members needs the real
//   predecessor and the real successor materialized when absent. To first
//   order each neighbor is present with the same probability p:
//       insertions_while_coalescing ~= 2 * W * (1 - p).
//   This is an upper bound: materializations themselves raise neighbor
//   presence, so the simulation runs somewhat below it (see
//   bench_analytic_model for the measured gap).
//
// Sanity anchors: for 3-2-2 with u = 1 the model gives p = 0.8, ghosts/del
// = 0.8, entries/rep = 1.2 against the paper's measured 0.88 / 1.33; with
// u = 0 (no updates - entries written exactly once, e.g. a freshly filled
// 10000-entry directory) p = 2/3 and ghosts/del = 0.67, exactly the paper's
// 10000-entry figure that its footnote 5 flags as pre-steady-state.
#pragma once

#include "common/status.h"
#include "rep/quorum.h"

namespace repdir::rep {

struct AnalyticInputs {
  /// Expected updates each entry receives during its lifetime.
  double updates_per_delete = 1.0;
};

struct AnalyticPrediction {
  double present_at_rep = 0.0;  ///< p above.
  double entries_in_ranges_coalesced = 0.0;  ///< Per write-quorum member.
  double deletions_while_coalescing = 0.0;   ///< Ghosts per delete (suite).
  double insertions_while_coalescing = 0.0;  ///< Upper bound (suite).
};

/// Valid for uniform one-vote configurations (the model's W/V inclusion
/// probability assumes equal votes).
Result<AnalyticPrediction> PredictDeleteOverheads(const QuorumConfig& config,
                                                  AnalyticInputs inputs);

}  // namespace repdir::rep
