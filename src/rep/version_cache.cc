#include "rep/version_cache.h"

#include <cassert>

namespace repdir::rep {

VersionCache::VersionCache(std::size_t capacity) : capacity_(capacity) {
  assert(capacity_ > 0 && "VersionCache requires a positive capacity");
}

std::optional<VersionCache::Entry> VersionCache::Lookup(const RepKey& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return it->second.entry;
}

void VersionCache::Put(const RepKey& key, Entry entry) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  if (map_.size() >= capacity_) {
    const auto victim = map_.find(lru_.back());
    assert(victim != map_.end());
    ++stats_.evictions;
    EraseIt(victim);
  }
  lru_.push_front(key);
  map_.emplace(key, Node{std::move(entry), lru_.begin()});
}

bool VersionCache::Invalidate(const RepKey& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  ++stats_.invalidations;
  EraseIt(it);
  return true;
}

std::size_t VersionCache::InvalidateRange(const RepKey& low,
                                          const RepKey& high) {
  std::size_t removed = 0;
  // Keys inside the coalesced range, bounds included: the bounding entries'
  // own gap_after changed too, so a cached gap keyed at either bound is as
  // stale as one strictly inside.
  for (auto it = map_.lower_bound(low);
       it != map_.end() && !(high < it->first);) {
    auto next = std::next(it);
    ++stats_.invalidations;
    ++removed;
    EraseIt(it);
    it = next;
  }
  // Cached gaps keyed outside [low, high] whose recorded bounds overlap
  // (low, high). On coherent committed data this finds nothing (a gap's key
  // lies inside its bounds), but the rule is what makes the cache safe by
  // construction rather than by invariant.
  for (auto it = map_.begin(); it != map_.end();) {
    auto next = std::next(it);
    const Entry& e = it->second.entry;
    if (!e.present && e.has_gap_bounds && e.gap_low < high && low < e.gap_high) {
      ++stats_.invalidations;
      ++removed;
      EraseIt(it);
    }
    it = next;
  }
  return removed;
}

void VersionCache::Clear() {
  stats_.invalidations += map_.size();
  map_.clear();
  lru_.clear();
}

void VersionCache::EraseIt(std::map<RepKey, Node>::iterator it) {
  lru_.erase(it->second.lru);
  map_.erase(it);
}

}  // namespace repdir::rep
