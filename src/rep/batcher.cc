#include "rep/batcher.h"

#include <chrono>

namespace repdir::rep {

AutoBatcher::AutoBatcher(DirectorySuite& suite)
    : AutoBatcher(suite, Options{}) {}

AutoBatcher::AutoBatcher(DirectorySuite& suite, Options options)
    : suite_(&suite), options_(options) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  dispatcher_ = std::thread([this] { Run(); });
}

AutoBatcher::~AutoBatcher() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

DirectorySuite::BatchOpResult AutoBatcher::Submit(DirectorySuite::BatchOp op) {
  auto pending = std::make_shared<Pending>();
  pending->op = std::move(op);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      pending->result.status = Status::Unavailable("batcher shut down");
      return pending->result;
    }
    queue_.push_back(pending);
    ++submitted_;
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lk(pending->mu);
  pending->cv.wait(lk, [&] { return pending->done; });
  return pending->result;
}

Result<DirectorySuite::LookupResult> AutoBatcher::Lookup(const UserKey& key) {
  DirectorySuite::BatchOp op;
  op.kind = DirectorySuite::BatchOp::Kind::kLookup;
  op.key = key;
  auto result = Submit(std::move(op));
  REPDIR_RETURN_IF_ERROR(result.status);
  return result.lookup;
}

Status AutoBatcher::Insert(const UserKey& key, const Value& value) {
  DirectorySuite::BatchOp op;
  op.kind = DirectorySuite::BatchOp::Kind::kInsert;
  op.key = key;
  op.value = value;
  return Submit(std::move(op)).status;
}

Status AutoBatcher::Update(const UserKey& key, const Value& value) {
  DirectorySuite::BatchOp op;
  op.kind = DirectorySuite::BatchOp::Kind::kUpdate;
  op.key = key;
  op.value = value;
  return Submit(std::move(op)).status;
}

void AutoBatcher::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  drained_cv_.wait(lk, [&] { return queue_.empty() && in_flight_ == 0; });
}

std::uint64_t AutoBatcher::batches_dispatched() const {
  std::lock_guard<std::mutex> lk(mu_);
  return batches_;
}

std::uint64_t AutoBatcher::ops_submitted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return submitted_;
}

void AutoBatcher::Run() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Something arrived: hold the door open briefly so concurrent
    // submitters coalesce into this group, then take up to max_batch.
    if (options_.max_wait_us > 0 && queue_.size() < options_.max_batch &&
        !stopping_) {
      cv_.wait_for(lk, std::chrono::microseconds(options_.max_wait_us), [&] {
        return stopping_ || queue_.size() >= options_.max_batch;
      });
    }
    std::vector<std::shared_ptr<Pending>> group;
    const std::size_t take = std::min(options_.max_batch, queue_.size());
    group.assign(queue_.begin(), queue_.begin() + static_cast<long>(take));
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<long>(take));
    ++batches_;
    in_flight_ = group.size();
    lk.unlock();

    std::vector<DirectorySuite::BatchOp> ops;
    ops.reserve(group.size());
    for (const auto& pending : group) ops.push_back(pending->op);
    DirectorySuite::BatchResult result = suite_->ExecuteBatch(ops);
    for (std::size_t i = 0; i < group.size(); ++i) {
      std::lock_guard<std::mutex> plk(group[i]->mu);
      group[i]->result = result.status.ok()
                             ? std::move(result.ops[i])
                             : DirectorySuite::BatchOpResult{result.status, {}};
      group[i]->done = true;
      group[i]->cv.notify_all();
    }
    lk.lock();
    in_flight_ = 0;
    if (queue_.empty()) drained_cv_.notify_all();
  }
}

}  // namespace repdir::rep
