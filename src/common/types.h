// Fundamental type aliases shared by every repdir module.
#pragma once

#include <cstdint>
#include <string>

namespace repdir {

/// Identifies a node (a process hosting one directory representative or a
/// client). NodeId 0 is reserved for "unassigned".
using NodeId = std::uint32_t;

/// Version number attached to every entry and every gap. The paper (§5)
/// notes that 48 or more bits may be required to prevent wrap-around; we use
/// 64 bits so wrap-around is unreachable in practice.
using Version = std::uint64_t;

/// Globally unique transaction identifier (coordinator node in the high bits,
/// per-coordinator sequence in the low bits; see txn/txn_id.h).
using TxnId = std::uint64_t;

/// Number of votes held by a representative in a voting configuration.
using Votes = std::uint32_t;

/// User-visible directory keys and values are opaque byte strings.
using UserKey = std::string;
using Value = std::string;

/// Virtual or real time in microseconds since an arbitrary epoch.
using TimeMicros = std::uint64_t;

/// A duration in microseconds.
using DurationMicros = std::uint64_t;

inline constexpr NodeId kInvalidNode = 0;
inline constexpr TxnId kInvalidTxn = 0;
inline constexpr Version kLowestVersion = 0;  ///< "LowestVersion" constant of Fig. 8.

}  // namespace repdir
