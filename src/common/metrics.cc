#include "common/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace repdir {

namespace {

/// Bucket 0 holds value 0; bucket b >= 1 holds values in [2^(b-1), 2^b).
std::size_t Log2Bucket(double value) {
  if (!(value > 0.0)) return 0;
  const auto v = static_cast<std::uint64_t>(value);
  return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
}

std::string FormatDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

void DistributionStat::Record(double value) {
  std::lock_guard<std::mutex> guard(mu_);
  moments_.Add(value);
  hist_.Add(Log2Bucket(value));
}

RunningStat DistributionStat::Moments() const {
  std::lock_guard<std::mutex> guard(mu_);
  return moments_;
}

std::uint64_t DistributionStat::count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return moments_.count();
}

void DistributionStat::Reset() {
  std::lock_guard<std::mutex> guard(mu_);
  moments_ = RunningStat();
  hist_ = CountHistogram(kLog2Buckets);
}

std::uint64_t DistributionStat::ApproxQuantile(double q) const {
  std::lock_guard<std::mutex> guard(mu_);
  const std::uint64_t bucket = hist_.Quantile(q);
  return bucket == 0 ? 0 : (std::uint64_t{1} << bucket) - 1;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

DistributionStat& MetricsRegistry::distribution(std::string_view name) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = distributions_.find(name);
  if (it == distributions_.end()) {
    it = distributions_
             .emplace(std::string(name), std::make_unique<DistributionStat>())
             .first;
  }
  return *it->second;
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += name + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, dist] : distributions_) {
    const RunningStat moments = dist->Moments();
    out += name + " count=" + std::to_string(moments.count());
    if (moments.count() > 0) {
      out += " " + moments.ToString() +
             " p50=" + std::to_string(dist->ApproxQuantile(0.5)) +
             " p99=" + std::to_string(dist->ApproxQuantile(0.99));
    }
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(counter->value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"distributions\": {";
  first = true;
  for (const auto& [name, dist] : distributions_) {
    const RunningStat moments = dist->Moments();
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": {";
    out += "\"count\": " + std::to_string(moments.count());
    out += ", \"mean\": " + FormatDouble(moments.mean());
    out += ", \"min\": " + FormatDouble(moments.min());
    out += ", \"max\": " + FormatDouble(moments.max());
    out += ", \"stddev\": " + FormatDouble(moments.stddev());
    out += ", \"p50\": " + std::to_string(dist->ApproxQuantile(0.5));
    out += ", \"p90\": " + std::to_string(dist->ApproxQuantile(0.9));
    out += ", \"p99\": " + std::to_string(dist->ApproxQuantile(0.99));
    out += "}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, dist] : distributions_) dist->Reset();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace repdir
