#include "common/rng.h"

#include <cmath>

namespace repdir {

double Rng::Log(double v) { return std::log(v); }

}  // namespace repdir
