// Error handling: Status (code + message) and Result<T> (Status or value).
//
// Modules report failures by value rather than by exception so that RPC
// failures, lock conflicts, and quorum unavailability can flow through the
// system uniformly (Core Guidelines E.27 style: no exceptions across module
// boundaries in this library).
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace repdir {

/// Canonical error codes. Deliberately coarse: callers branch on the class
/// of failure, and `message()` carries the specifics.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kNotFound,        ///< Key or object does not exist.
  kAlreadyExists,   ///< Insert of a key that is present.
  kInvalidArgument, ///< Caller bug: bad config, sentinel key misuse, ...
  kUnavailable,     ///< Quorum cannot be collected / node down / timeout.
  kAborted,         ///< Transaction aborted (deadlock victim, conflict).
  kFailedPrecondition, ///< Object in wrong state for this operation.
  kCorruption,      ///< Storage invariant violated (WAL checksum, ...).
  kInternal,        ///< Bug in this library.
  kVersionMismatch, ///< Guarded write lost an optimistic race (stale cache).
  kWrongShard,      ///< Request routed with a stale shard map / out-of-range key.
};

std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path (no message
/// allocation); carries a human-readable message on failure.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status Aborted(std::string m) { return {StatusCode::kAborted, std::move(m)}; }
  static Status FailedPrecondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status Corruption(std::string m) { return {StatusCode::kCorruption, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  static Status VersionMismatch(std::string m) { return {StatusCode::kVersionMismatch, std::move(m)}; }
  static Status WrongShard(std::string m) { return {StatusCode::kWrongShard, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>" — for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Result<T>: either a value or a non-OK Status. Minimal expected<T,E>.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { assert(ok()); return *value_; }
  const T& value() const& { assert(ok()); return *value_; }
  T&& value() && { assert(ok()); return *std::move(value_); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Value if OK, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace repdir

/// Propagate a non-OK Status from an expression that yields Status.
#define REPDIR_RETURN_IF_ERROR(expr)                      \
  do {                                                    \
    ::repdir::Status _st = (expr);                        \
    if (!_st.ok()) return _st;                            \
  } while (false)

/// Evaluate an expression yielding Result<T>; on error return its status,
/// otherwise bind the value to `lhs`.
#define REPDIR_ASSIGN_OR_RETURN(lhs, expr)                \
  auto REPDIR_CONCAT_(_res, __LINE__) = (expr);           \
  if (!REPDIR_CONCAT_(_res, __LINE__).ok())               \
    return REPDIR_CONCAT_(_res, __LINE__).status();       \
  lhs = std::move(REPDIR_CONCAT_(_res, __LINE__)).value()

#define REPDIR_CONCAT_(a, b) REPDIR_CONCAT_IMPL_(a, b)
#define REPDIR_CONCAT_IMPL_(a, b) a##b
