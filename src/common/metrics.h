// Process-wide observability substrate: a registry of named counters and
// value/latency distributions that every layer (net, lock, txn, rep,
// storage) reports into.
//
// Design constraints, in order:
//   * Passive. Metrics are recorded out-of-band and never feed back into
//     control flow, so a deterministic InProcTransport run is bit-identical
//     whether or not anyone reads the registry.
//   * Cheap on the hot path. Counter increments are single relaxed atomics;
//     distributions take one short mutex. Components look up their metric
//     objects once (construction time) and keep the pointers - registry
//     lookups never sit on a per-RPC path.
//   * Time is injectable. Latency measurement goes through the registry's
//     Clock, so simulated deployments (VirtualClock) report virtual-time
//     latencies and tests are reproducible.
//
// Metric names are dotted paths ("rpc.attempts", "lock.wait_us",
// "txn.2pc.prepare_us"); docs/ALGORITHM.md lists the full vocabulary.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/stats.h"

namespace repdir {

/// Monotonic event counter. Thread-safe; increments are relaxed atomics
/// (totals are exact, ordering against other metrics is not promised).
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Distribution of non-negative samples (latencies in microseconds, wave
/// widths, quorum sizes): exact moments via RunningStat plus a log2-bucketed
/// CountHistogram for approximate quantiles.
class DistributionStat {
 public:
  DistributionStat() : hist_(kLog2Buckets) {}

  void Record(double value);

  /// Consistent snapshot of the moments.
  RunningStat Moments() const;
  std::uint64_t count() const;

  /// Approximate quantile: the upper bound (2^b - 1) of the log2 bucket
  /// holding the q-th sample. q is clamped like CountHistogram::Quantile.
  std::uint64_t ApproxQuantile(double q) const;

  void Reset();

 private:
  /// Buckets cover [0], [1], [2,3], [4,7], ... up to ~2^39 (overflow above).
  static constexpr std::size_t kLog2Buckets = 40;

  mutable std::mutex mu_;
  RunningStat moments_;
  CountHistogram hist_;
};

class MetricsRegistry {
 public:
  /// `clock` backs latency measurement; null means wall-clock time.
  explicit MetricsRegistry(const Clock* clock = nullptr)
      : clock_(clock != nullptr ? clock : &RealClock::Instance()) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric. The returned reference is stable
  /// for the registry's lifetime - cache it, don't re-look-up per event.
  Counter& counter(std::string_view name);
  DistributionStat& distribution(std::string_view name);

  /// The clock latency measurement reads. Swap before the instrumented
  /// components are constructed (simulations install their VirtualClock).
  void set_clock(const Clock* clock) {
    clock_.store(clock != nullptr ? clock : &RealClock::Instance(),
                 std::memory_order_release);
  }
  TimeMicros NowMicros() const {
    return clock_.load(std::memory_order_acquire)->Now();
  }

  /// "name value" / "name count=.. avg=.." lines, sorted by name.
  std::string RenderText() const;

  /// {"counters": {...}, "distributions": {name: {count, mean, min, max,
  /// stddev, p50, p90, p99}, ...}} - consumed by BENCH_observability.json
  /// and the shell's `metrics json` command.
  std::string RenderJson() const;

  /// Zeroes every metric; registered names (and cached pointers) survive.
  void Reset();

  /// The process-wide registry that instrumentation reports to unless a
  /// component was handed a private one.
  static MetricsRegistry& Default();

 private:
  std::atomic<const Clock*> clock_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<DistributionStat>, std::less<>>
      distributions_;
};

/// RAII latency sample: records clock-now minus construction time into a
/// distribution on destruction (in microseconds).
class ScopedLatency {
 public:
  ScopedLatency(const MetricsRegistry& registry, DistributionStat& stat)
      : registry_(&registry), stat_(&stat), start_(registry.NowMicros()) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

  ~ScopedLatency() {
    const TimeMicros now = registry_->NowMicros();
    stat_->Record(now >= start_ ? static_cast<double>(now - start_) : 0.0);
  }

 private:
  const MetricsRegistry* registry_;
  DistributionStat* stat_;
  TimeMicros start_;
};

}  // namespace repdir
