#include "common/bytes.h"

#include <array>

namespace repdir {
namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0u);  // CRC-32C reflected
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t n, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = BuildCrcTable();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace repdir
