// Deterministic pseudo-random number generation.
//
// All randomized components (quorum selection, workload generation, failure
// injection, simulated latency) draw from an explicitly seeded Rng so that
// every simulation and test run is reproducible from its seed. The core is
// xoshiro256**, which is fast, has a 2^256-1 period, and passes BigCrush.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

namespace repdir {

class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) s = SplitMix64(x);
  }

  /// Uniform 64-bit value.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless method (bias negligible for 64-bit state).
  std::uint64_t Below(std::uint64_t bound) {
    assert(bound > 0);
    return Next() % bound;  // modulo bias < 2^-64 * bound: irrelevant here
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi) {
    assert(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool Chance(double p) { return NextDouble() < p; }

  /// Uniformly chosen index into a container of the given size.
  std::size_t Index(std::size_t size) {
    return static_cast<std::size_t>(Below(size));
  }

  /// Picks a uniformly random element (container must be non-empty).
  template <typename Container>
  const typename Container::value_type& Pick(const Container& c) {
    assert(!c.empty());
    return c[Index(c.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[Index(i)]);
    }
  }

  /// A uniformly random subset of k distinct indices from [0, n).
  std::vector<std::size_t> Sample(std::size_t n, std::size_t k) {
    assert(k <= n);
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    // Partial Fisher-Yates: first k positions become the sample.
    for (std::size_t i = 0; i < k; ++i) {
      std::swap(all[i], all[i + Index(n - i)]);
    }
    all.resize(k);
    return all;
  }

  /// Derives an independent child generator (for per-node streams).
  Rng Fork() { return Rng(Next()); }

  /// Exponentially distributed value with the given mean (for simulated
  /// network latency).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) u = 0x1.0p-53;
    // -mean * ln(u); ln via std would pull <cmath>: fine.
    return -mean * Log(u);
  }

 private:
  static std::uint64_t SplitMix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static std::uint64_t Rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }
  static double Log(double v);

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace repdir
