// Minimal leveled logger. Logging is off by default (benches and sims emit
// their own structured output); tests and examples can raise the level to
// trace quorum and lock decisions.
#pragma once

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace repdir {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& Instance() {
    static Logger logger;
    return logger;
  }

  /// Level checks race with set_level by design (a logger can be raised
  /// mid-run); the atomic keeps that race benign.
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool Enabled(LogLevel level) const { return level >= this->level(); }

  /// Emits "[LEVEL file:line] msg\n" as ONE stream write under the logger
  /// mutex, so lines from concurrent threads (worker pools, tracing) never
  /// shear mid-line.
  void Write(LogLevel level, std::string_view file, int line,
             std::string_view msg);

 private:
  std::atomic<LogLevel> level_{LogLevel::kOff};
  std::mutex mu_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { Logger::Instance().Write(level_, file_, line_, ss_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream ss_;
};
}  // namespace detail

}  // namespace repdir

#define REPDIR_LOG(level)                                             \
  if (!::repdir::Logger::Instance().Enabled(::repdir::LogLevel::level)) \
    ;                                                                 \
  else                                                                \
    ::repdir::detail::LogLine(::repdir::LogLevel::level, __FILE__, __LINE__)

#define REPDIR_TRACE() REPDIR_LOG(kTrace)
#define REPDIR_DEBUG() REPDIR_LOG(kDebug)
#define REPDIR_INFO() REPDIR_LOG(kInfo)
#define REPDIR_WARN() REPDIR_LOG(kWarn)
#define REPDIR_ERROR() REPDIR_LOG(kError)
