// Lightweight tracing: RAII spans correlated by transaction id, collected
// into a fixed-size ring buffer and dumped as JSON.
//
// A TraceSpan brackets one logical step (a suite operation, a 2PC phase);
// nesting is expressed by shared txn ids rather than explicit parent links,
// which is enough to reconstruct an operation's timeline from the sink.
// Tracing is off by default: a span against a disabled sink is inert (two
// atomic loads, no allocation), so instrumentation can stay compiled in
// everywhere. Like metrics, spans never feed back into behaviour, and time
// comes from an injectable Clock so simulated runs trace virtual time.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/types.h"

namespace repdir {

struct TraceEvent {
  std::string name;           ///< Dotted span name, e.g. "suite.delete".
  TxnId txn = kInvalidTxn;    ///< Correlates spans of one transaction.
  TimeMicros start_us = 0;
  TimeMicros end_us = 0;
  std::string note;           ///< Optional outcome annotation.
};

/// Ring-buffer span collector. Thread-safe; keeps the most recent
/// `capacity` events and counts the ones it had to drop.
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 4096, const Clock* clock = nullptr)
      : clock_(clock != nullptr ? clock : &RealClock::Instance()),
        capacity_(capacity) {}

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void set_clock(const Clock* clock) {
    clock_.store(clock != nullptr ? clock : &RealClock::Instance(),
                 std::memory_order_release);
  }
  TimeMicros Now() const {
    return clock_.load(std::memory_order_acquire)->Now();
  }

  void Record(TraceEvent event);

  /// Buffered events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// {"dropped": n, "spans": [{"name", "txn", "start_us", "end_us",
  /// "note"}, ...]} - oldest first.
  std::string DumpJson() const;

  void Clear();

  std::uint64_t recorded() const;  ///< Events ever offered while enabled.
  std::uint64_t dropped() const;   ///< Events evicted by the ring.

  /// Process-wide sink used by instrumentation unless given a private one.
  static TraceSink& Default();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<const Clock*> clock_;
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::deque<TraceEvent> ring_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// RAII span: samples the sink's clock at construction and records the
/// event at destruction. If the sink is disabled at construction time the
/// span stays inert for its whole life (enable/disable races just lose or
/// keep that one span, they never tear state).
class TraceSpan {
 public:
  TraceSpan(TraceSink& sink, std::string_view name, TxnId txn = kInvalidTxn)
      : sink_(sink.enabled() ? &sink : nullptr) {
    if (sink_ != nullptr) {
      name_ = name;
      txn_ = txn;
      start_ = sink_->Now();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an outcome note ("ABORTED: ...") to the eventual event.
  void Annotate(std::string_view note) {
    if (sink_ != nullptr) note_ = note;
  }

  ~TraceSpan() {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.name = std::move(name_);
    event.txn = txn_;
    event.start_us = start_;
    event.end_us = sink_->Now();
    event.note = std::move(note_);
    sink_->Record(std::move(event));
  }

 private:
  TraceSink* sink_;
  std::string name_;
  std::string note_;
  TxnId txn_ = kInvalidTxn;
  TimeMicros start_ = 0;
};

}  // namespace repdir
