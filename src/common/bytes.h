// Binary serialization primitives used by the RPC layer and the write-ahead
// log: a growable write buffer and a bounds-checked reader. Encoding is
// little-endian fixed-width for integers plus LEB128 varints for lengths, so
// encoded messages are portable and self-delimiting.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace repdir {

/// Append-only binary writer.
class ByteWriter {
 public:
  void PutU8(std::uint8_t v) { buf_.push_back(v); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutU32(std::uint32_t v) { PutFixed(v); }
  void PutU64(std::uint64_t v) { PutFixed(v); }

  /// LEB128 unsigned varint: 1 byte for values < 128, used for lengths.
  void PutVarint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Length-prefixed byte string.
  void PutString(std::string_view s) {
    PutVarint(s.size());
    PutRaw(s.data(), s.size());
  }

  void PutRaw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

  /// Moves the accumulated bytes out; the writer is reusable afterwards.
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

  std::string TakeString() {
    std::string s(reinterpret_cast<const char*>(buf_.data()), buf_.size());
    buf_.clear();
    return s;
  }

 private:
  template <typename T>
  void PutFixed(T v) {
    std::uint8_t tmp[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      tmp[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    PutRaw(tmp, sizeof(T));
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked binary reader over a borrowed byte range. All getters
/// report kCorruption instead of reading past the end, so a truncated or
/// hostile message can never crash the server.
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t size)
      : p_(static_cast<const std::uint8_t*>(data)), end_(p_ + size) {}
  explicit ByteReader(std::string_view s) : ByteReader(s.data(), s.size()) {}
  explicit ByteReader(const std::vector<std::uint8_t>& v)
      : ByteReader(v.data(), v.size()) {}

  Status GetU8(std::uint8_t& out) {
    REPDIR_RETURN_IF_ERROR(Need(1));
    out = *p_++;
    return Status::Ok();
  }

  Status GetBool(bool& out) {
    std::uint8_t v = 0;
    REPDIR_RETURN_IF_ERROR(GetU8(v));
    if (v > 1) return Status::Corruption("bool byte out of range");
    out = v != 0;
    return Status::Ok();
  }

  Status GetU32(std::uint32_t& out) { return GetFixed(out); }
  Status GetU64(std::uint64_t& out) { return GetFixed(out); }

  Status GetVarint(std::uint64_t& out) {
    out = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      REPDIR_RETURN_IF_ERROR(Need(1));
      const std::uint8_t b = *p_++;
      out |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return Status::Ok();
    }
    return Status::Corruption("varint too long");
  }

  Status GetString(std::string& out) {
    std::uint64_t len = 0;
    REPDIR_RETURN_IF_ERROR(GetVarint(len));
    REPDIR_RETURN_IF_ERROR(Need(len));
    out.assign(reinterpret_cast<const char*>(p_), len);
    p_ += len;
    return Status::Ok();
  }

  Status Skip(std::size_t n) {
    REPDIR_RETURN_IF_ERROR(Need(n));
    p_ += n;
    return Status::Ok();
  }

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool AtEnd() const { return p_ == end_; }

  /// Fails unless every byte has been consumed - catches trailing garbage.
  Status ExpectEnd() const {
    return AtEnd() ? Status::Ok()
                   : Status::Corruption("trailing bytes after message");
  }

 private:
  Status Need(std::uint64_t n) const {
    return remaining() >= n
               ? Status::Ok()
               : Status::Corruption("unexpected end of buffer");
  }

  template <typename T>
  Status GetFixed(T& out) {
    REPDIR_RETURN_IF_ERROR(Need(sizeof(T)));
    out = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out |= static_cast<T>(p_[i]) << (8 * i);
    }
    p_ += sizeof(T);
    return Status::Ok();
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

/// CRC32 (Castagnoli polynomial, table-driven) for WAL record integrity.
std::uint32_t Crc32c(const void* data, std::size_t n,
                     std::uint32_t seed = 0);

}  // namespace repdir
