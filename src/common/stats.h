// Online statistics used by the simulation harness to report the paper's
// measurements (Figures 14 and 15): average, maximum, and standard deviation
// of per-operation counts, plus a simple fixed-bucket histogram.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace repdir {

/// Welford's online algorithm: numerically stable mean / variance / extrema
/// in O(1) space. This is what backs every "Avg / Max / Std Dev" row in the
/// reproduced figures.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Empty accumulators report 0 for every moment (mean/min/max/variance):
  /// exporters render cold stats as zeros rather than infinities or NaN.
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Population variance (the paper reports simulation-wide deviations).
  /// Clamped to >= 0: catastrophic cancellation can drive m2 slightly
  /// negative, and sqrt of that would turn stddev() into NaN.
  double variance() const {
    return n_ ? std::max(0.0, m2_ / static_cast<double>(n_)) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStat& other);

  /// "avg=1.33 max=9 sd=0.87" - compact rendering for bench output.
  std::string ToString() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram over non-negative integer observations with unit buckets up to
/// `max_tracked`, and an overflow bucket. Used for distribution shape of the
/// coalescing statistics.
class CountHistogram {
 public:
  explicit CountHistogram(std::size_t max_tracked = 64)
      : buckets_(max_tracked + 1, 0) {}

  void Add(std::uint64_t value) {
    const std::size_t idx =
        std::min<std::uint64_t>(value, buckets_.size() - 1);
    ++buckets_[idx];
    ++total_;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
  std::size_t num_buckets() const { return buckets_.size(); }

  /// Smallest value v such that at least a `q` fraction of observations
  /// are <= v. `q` is clamped into (0, 1]: q <= 0 returns the minimum
  /// observation and q >= 1 the maximum (as tracked). An empty histogram
  /// returns 0.
  std::uint64_t Quantile(double q) const;

  std::string ToString() const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace repdir
