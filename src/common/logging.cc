#include "common/logging.h"

#include <string>

namespace repdir {
namespace {

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::string_view Basename(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

void Logger::Write(LogLevel level, std::string_view file, int line,
                   std::string_view msg) {
  // Format the full line first, then emit it with a single stream write:
  // piecewise operator<< on cerr issues one unbuffered write per piece,
  // which interleaves with other writers of the underlying fd even when
  // the pieces themselves are serialized by a mutex.
  std::string out;
  out.reserve(msg.size() + 32);
  out += '[';
  out += LevelName(level);
  out += ' ';
  out += Basename(file);
  out += ':';
  out += std::to_string(line);
  out += "] ";
  out += msg;
  out += '\n';
  std::lock_guard<std::mutex> guard(mu_);
  std::cerr.write(out.data(), static_cast<std::streamsize>(out.size()));
}

}  // namespace repdir
