#include "common/logging.h"

namespace repdir {
namespace {

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::string_view Basename(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

void Logger::Write(LogLevel level, std::string_view file, int line,
                   std::string_view msg) {
  std::lock_guard<std::mutex> guard(mu_);
  std::cerr << '[' << LevelName(level) << ' ' << Basename(file) << ':' << line
            << "] " << msg << '\n';
}

}  // namespace repdir
