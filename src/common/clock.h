// Time abstraction. Components that need time (RPC timeouts, latency
// injection, WAL timestamps) take a Clock&, so the same code runs under the
// discrete-event simulator (virtual time, deterministic) and under real
// threads (wall-clock time).
#pragma once

#include <atomic>
#include <chrono>

#include "common/types.h"

namespace repdir {

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeMicros Now() const = 0;
};

/// Wall-clock time (steady, monotonic).
class RealClock final : public Clock {
 public:
  TimeMicros Now() const override {
    const auto d = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<TimeMicros>(
        std::chrono::duration_cast<std::chrono::microseconds>(d).count());
  }

  /// Process-wide instance (stateless, safe to share).
  static RealClock& Instance() {
    static RealClock clock;
    return clock;
  }
};

/// Manually advanced virtual clock; the event loop in src/sim drives it.
/// Thread-safe so that threaded tests may also use it as a fake.
class VirtualClock final : public Clock {
 public:
  TimeMicros Now() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void AdvanceTo(TimeMicros t) {
    now_.store(t, std::memory_order_relaxed);
  }
  void AdvanceBy(DurationMicros d) {
    now_.fetch_add(d, std::memory_order_relaxed);
  }

 private:
  std::atomic<TimeMicros> now_{0};
};

}  // namespace repdir
