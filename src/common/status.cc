#include "common/status.h"

namespace repdir {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kVersionMismatch: return "VERSION_MISMATCH";
    case StatusCode::kWrongShard: return "WRONG_SHARD";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace repdir
