#include "common/stats.h"

#include <cstdio>

namespace repdir {

void RunningStat::Merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string RunningStat::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "avg=%.2f max=%.0f sd=%.2f", mean(), max(),
                stddev());
  return buf;
}

std::uint64_t CountHistogram::Quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // At least one observation must be covered: a floor of 0 would select
  // bucket 0 even when it is empty (no observation is <= 0).
  const auto threshold = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= threshold) return i;
  }
  return buckets_.size() - 1;
}

std::string CountHistogram::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%zu%s:%llu ", i,
                  i + 1 == buckets_.size() ? "+" : "",
                  static_cast<unsigned long long>(buckets_[i]));
    out += buf;
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace repdir
