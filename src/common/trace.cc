#include "common/trace.h"

#include <cstdio>

namespace repdir {

namespace {

/// Minimal JSON string escape: control characters, quotes, backslashes.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void TraceSink::Record(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> guard(mu_);
  ++recorded_;
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceSink::Snapshot() const {
  std::lock_guard<std::mutex> guard(mu_);
  return {ring_.begin(), ring_.end()};
}

std::string TraceSink::DumpJson() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::string out = "{\n  \"dropped\": " + std::to_string(dropped_) +
                    ",\n  \"spans\": [";
  bool first = true;
  for (const TraceEvent& e : ring_) {
    out += first ? "\n" : ",\n";
    out += "    {\"name\": \"" + JsonEscape(e.name) +
           "\", \"txn\": " + std::to_string(e.txn) +
           ", \"start_us\": " + std::to_string(e.start_us) +
           ", \"end_us\": " + std::to_string(e.end_us);
    if (!e.note.empty()) out += ", \"note\": \"" + JsonEscape(e.note) + "\"";
    out += "}";
    first = false;
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  ring_.clear();
  recorded_ = 0;
  dropped_ = 0;
}

std::uint64_t TraceSink::recorded() const {
  std::lock_guard<std::mutex> guard(mu_);
  return recorded_;
}

std::uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> guard(mu_);
  return dropped_;
}

TraceSink& TraceSink::Default() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

}  // namespace repdir
