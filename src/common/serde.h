// Serialization conventions shared by the RPC layer and the write-ahead
// log. A type participates by providing:
//   void Encode(ByteWriter&) const;
//   Status Decode(ByteReader&);
#pragma once

#include <concepts>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace repdir {

template <typename T>
concept WireMessage = requires(const T ct, T t, ByteWriter& w, ByteReader& r) {
  { ct.Encode(w) } -> std::same_as<void>;
  { t.Decode(r) } -> std::same_as<Status>;
};

/// Serializes a message to a byte string.
template <WireMessage T>
std::string EncodeToString(const T& msg) {
  ByteWriter w;
  msg.Encode(w);
  return w.TakeString();
}

/// Parses a message from a byte string, requiring full consumption.
template <WireMessage T>
Status DecodeFromString(const std::string& bytes, T& out) {
  ByteReader r(bytes);
  REPDIR_RETURN_IF_ERROR(out.Decode(r));
  return r.ExpectEnd();
}

/// An empty payload, for requests or responses that carry no data.
struct EmptyMessage {
  void Encode(ByteWriter&) const {}
  Status Decode(ByteReader&) { return Status::Ok(); }
};

}  // namespace repdir
