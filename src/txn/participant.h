// TxnParticipant: the transactional executor wrapped around one directory
// representative.
//
// Each operation (Fig. 6) acquires its range lock, applies the mutation to
// the storage backend, records the undo action, and (when a WAL is
// attached) appends a redo record. Two-phase commit drives Prepare /
// Commit / Abort; strict 2PL releases locks only at the decision.
//
// Concurrency model: the range-lock manager provides logical isolation
// between transactions; a short internal mutex serializes physical access
// to the (non-thread-safe) storage structure. Range locks are acquired
// OUTSIDE the storage mutex, so blocking on a lock never stalls unrelated
// transactions.
#pragma once

#include <map>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "lock/range_lock_manager.h"
#include "storage/dir_rep_core.h"
#include "storage/range_digest.h"
#include "storage/wal.h"

namespace repdir::txn {

using lock::KeyRange;
using lock::LockMode;
using storage::CoalesceEffect;
using storage::InsertEffect;
using storage::LookupReply;
using storage::NeighborReply;
using storage::RepKey;

struct ParticipantOptions {
  /// Blocking lock acquisition (threaded deployments) vs. immediate abort
  /// on conflict (deterministic simulator).
  bool blocking_locks = true;
  DurationMicros lock_timeout_micros = 10'000'000;

  /// Registry the lock manager (and the node's WAL) report into; null
  /// means the process-wide default.
  MetricsRegistry* metrics = nullptr;
};

class TxnParticipant {
 public:
  /// `wal` may be null (durability disabled, e.g. in statistical sims).
  TxnParticipant(storage::RepStorage& stg, lock::DeadlockDetector* detector,
                 storage::WalWriter* wal, ParticipantOptions options = {})
      : core_(stg), locks_(detector, options.metrics), wal_(wal),
        options_(options),
        digest_hits_(&RegistryOf(options).counter(
            "participant.digest_cache.hits")),
        digest_misses_(&RegistryOf(options).counter(
            "participant.digest_cache.misses")) {}

  // --- Figure 6 operations, transactional ---

  Result<LookupReply> Lookup(TxnId txn, const RepKey& k);
  Result<NeighborReply> Predecessor(TxnId txn, const RepKey& k);
  Result<NeighborReply> Successor(TxnId txn, const RepKey& k);

  /// Up to `count` successive predecessors (successors) walking down (up)
  /// from `k`, stopping at a sentinel - the §4 batching optimization. Locks
  /// exactly what the equivalent sequence of single calls would lock.
  Result<std::vector<NeighborReply>> PredecessorBatch(TxnId txn,
                                                      const RepKey& k,
                                                      std::uint32_t count);
  Result<std::vector<NeighborReply>> SuccessorBatch(TxnId txn, const RepKey& k,
                                                    std::uint32_t count);
  Status Insert(TxnId txn, const RepKey& k, Version v, const Value& value);

  /// Guarded DirRepInsert: applies only when this representative's current
  /// version for k does not exceed `expected_version`, otherwise
  /// kVersionMismatch. The check and the insert run atomically under the
  /// same RepModify(x, x) lock, so a guard that passes stays valid until
  /// this transaction's 2PC decision.
  Status GuardedInsert(TxnId txn, const RepKey& k, Version v,
                       const Value& value, Version expected_version);
  Result<CoalesceEffect> Coalesce(TxnId txn, const RepKey& l, const RepKey& h,
                                  Version gap_version);

  // --- Anti-entropy (rep/reconciler.h) ---

  /// Digests segment (low, high] split into at most `fanout` children cut
  /// at local entry keys. Deliberately lock-free (storage mutex only): a
  /// digest is a hint about where replicas differ, never acted on directly
  /// - the repair leg re-reads everything under FetchRange's read locks,
  /// so a digest that raced a writer costs at worst a wasted comparison.
  ///
  /// Results are served from a digest checkpoint cache invalidated by the
  /// mutations that overlap a cached segment, so idempotent anti-entropy
  /// passes over a quiescent keyspace re-hash only what changed (counters
  /// "participant.digest_cache.{hits,misses}").
  Result<std::vector<storage::RangeDigest>> DigestRange(
      const RepKey& low, const RepKey& high, std::uint32_t fanout) const;

  /// Digests each explicitly-bounded segment, in request order. Lock-free
  /// and cached like DigestRange.
  Result<std::vector<storage::RangeDigest>> DigestSpans(
      const std::vector<std::pair<RepKey, RepKey>>& spans) const;

  /// Drops every cached digest. Call after any mutation that bypasses this
  /// participant (WAL recovery, in-doubt resolution write storage directly).
  void ClearDigestCache() const;

  /// Full state of segment (low, high] under a RepLookup range lock held by
  /// `txn` (strict 2PL: the segment cannot change until the decision), so
  /// repairs derived from the fetch act on state that is still true when
  /// they apply.
  Result<storage::SegmentState> FetchRange(TxnId txn, const RepKey& low,
                                           const RepKey& high);

  // --- Two-phase commit ---

  /// Phase 1: forces this transaction's redo records to the log. After a
  /// successful Prepare the participant guarantees it can commit.
  Status Prepare(TxnId txn);

  /// Phase 2: makes the transaction durable-committed and releases locks.
  Status Commit(TxnId txn);

  /// Undoes the transaction's effects (reverse order) and releases locks.
  Status Abort(TxnId txn);

  /// Whether `txn` has executed any operation here and is undecided.
  bool IsActive(TxnId txn) const;

  /// Number of undecided transactions (tests; checkpointing requires 0).
  std::size_t ActiveCount() const;

  /// Writes a checkpoint through the WAL. Fails while transactions are
  /// active (the snapshot must be transaction-consistent).
  Status WriteCheckpoint();

  lock::RangeLockManager& lock_manager() { return locks_; }
  storage::DirRepCore& core() { return core_; }
  const storage::RepStorage& storage() const { return core_.storage(); }

 private:
  /// One recorded undo action.
  struct Undo {
    enum class Kind : std::uint8_t { kInsert, kCoalesce } kind;
    RepKey key;   ///< Insert: key; Coalesce: lower bound l.
    RepKey high;  ///< Coalesce only: upper bound h (digest invalidation).
    InsertEffect insert_effect;
    CoalesceEffect coalesce_effect;
  };

  struct TxnState {
    std::vector<Undo> undo;
    bool prepared = false;
  };

  Status AcquireLock(TxnId txn, LockMode mode, const KeyRange& range);

  /// Looks up txn state, creating it on first touch. mu_ held.
  TxnState& StateFor(TxnId txn);

  /// Erases every cached digest whose segment (slow, shigh] could be
  /// affected by a mutation touching keys or gap versions in [lo, hi]:
  /// slow <= hi && lo <= shigh (slow == hi matters because the gap leaving
  /// a segment's low bound belongs to that segment). mu_ held.
  void InvalidateDigestsLocked(const RepKey& lo, const RepKey& hi) const;

  static MetricsRegistry& RegistryOf(const ParticipantOptions& options) {
    return options.metrics != nullptr ? *options.metrics
                                      : MetricsRegistry::Default();
  }

  storage::DirRepCore core_;
  lock::RangeLockManager locks_;
  storage::WalWriter* wal_;
  ParticipantOptions options_;

  Counter* digest_hits_;
  Counter* digest_misses_;

  mutable std::mutex mu_;  ///< Guards storage structure + txn table + WAL.
  std::map<TxnId, TxnState> txns_;

  /// Digest checkpoint caches (guarded by mu_; mutable because the digest
  /// reads are const). Keyed by segment bounds (+ fanout for splits); every
  /// write through this participant invalidates overlapping segments, so a
  /// reconcile pass over a cold range is answered without re-hashing it.
  static constexpr std::size_t kDigestCacheCap = 8192;
  mutable std::map<std::tuple<RepKey, RepKey, std::uint32_t>,
                   std::vector<storage::RangeDigest>>
      split_cache_;
  mutable std::map<std::pair<RepKey, RepKey>, storage::RangeDigest>
      span_cache_;
};

}  // namespace repdir::txn
