#include "txn/participant.h"

namespace repdir::txn {

Status TxnParticipant::AcquireLock(TxnId txn, LockMode mode,
                                   const KeyRange& range) {
  if (options_.blocking_locks) {
    return locks_.Acquire(txn, mode, range, options_.lock_timeout_micros);
  }
  return locks_.TryAcquire(txn, mode, range);
}

TxnParticipant::TxnState& TxnParticipant::StateFor(TxnId txn) {
  return txns_[txn];
}

Result<LookupReply> TxnParticipant::Lookup(TxnId txn, const RepKey& k) {
  // Locks RepLookup(x, x) - Fig. 6. This is sufficient even though a miss
  // reads the floor entry's gap version: any Coalesce that could change the
  // gap containing x locks a RepModify range that covers x.
  REPDIR_RETURN_IF_ERROR(AcquireLock(txn, LockMode::kLookup,
                                     KeyRange::Point(k)));
  std::lock_guard<std::mutex> guard(mu_);
  StateFor(txn);
  return core_.Lookup(k);
}

Result<NeighborReply> TxnParticipant::Predecessor(TxnId txn, const RepKey& k) {
  if (k.is_low()) return Status::InvalidArgument("Predecessor of LOW");
  // Locks RepLookup(y, x) where y is the key returned - Fig. 6. The key is
  // only known after the read, so compute, lock, and re-validate: if a
  // concurrent insert slipped into (y, x) before our lock landed, loop with
  // the new neighbor (strict 2PL keeps the superseded lock; harmless).
  for (;;) {
    NeighborReply reply;
    {
      std::lock_guard<std::mutex> guard(mu_);
      REPDIR_ASSIGN_OR_RETURN(reply, core_.Predecessor(k));
    }
    REPDIR_RETURN_IF_ERROR(
        AcquireLock(txn, LockMode::kLookup, KeyRange{reply.key, k}));
    std::lock_guard<std::mutex> guard(mu_);
    REPDIR_ASSIGN_OR_RETURN(const NeighborReply check, core_.Predecessor(k));
    if (check.key == reply.key) {
      StateFor(txn);
      return check;
    }
  }
}

Result<NeighborReply> TxnParticipant::Successor(TxnId txn, const RepKey& k) {
  if (k.is_high()) return Status::InvalidArgument("Successor of HIGH");
  // Locks RepLookup(x, y) where y is the key returned - Fig. 6.
  for (;;) {
    NeighborReply reply;
    {
      std::lock_guard<std::mutex> guard(mu_);
      REPDIR_ASSIGN_OR_RETURN(reply, core_.Successor(k));
    }
    REPDIR_RETURN_IF_ERROR(
        AcquireLock(txn, LockMode::kLookup, KeyRange{k, reply.key}));
    std::lock_guard<std::mutex> guard(mu_);
    REPDIR_ASSIGN_OR_RETURN(const NeighborReply check, core_.Successor(k));
    if (check.key == reply.key) {
      StateFor(txn);
      return check;
    }
  }
}

Result<std::vector<NeighborReply>> TxnParticipant::PredecessorBatch(
    TxnId txn, const RepKey& k, std::uint32_t count) {
  if (count == 0 || count > 64) {
    return Status::InvalidArgument("batch count out of range");
  }
  std::vector<NeighborReply> steps;
  RepKey cur = k;
  while (steps.size() < count && !cur.is_low()) {
    REPDIR_ASSIGN_OR_RETURN(NeighborReply step, Predecessor(txn, cur));
    cur = step.key;
    steps.push_back(std::move(step));
  }
  return steps;
}

Result<std::vector<NeighborReply>> TxnParticipant::SuccessorBatch(
    TxnId txn, const RepKey& k, std::uint32_t count) {
  if (count == 0 || count > 64) {
    return Status::InvalidArgument("batch count out of range");
  }
  std::vector<NeighborReply> steps;
  RepKey cur = k;
  while (steps.size() < count && !cur.is_high()) {
    REPDIR_ASSIGN_OR_RETURN(NeighborReply step, Successor(txn, cur));
    cur = step.key;
    steps.push_back(std::move(step));
  }
  return steps;
}

Status TxnParticipant::Insert(TxnId txn, const RepKey& k, Version v,
                              const Value& value) {
  // Locks RepModify(x, x) - Fig. 6.
  REPDIR_RETURN_IF_ERROR(AcquireLock(txn, LockMode::kModify,
                                     KeyRange::Point(k)));
  std::lock_guard<std::mutex> guard(mu_);
  REPDIR_ASSIGN_OR_RETURN(const InsertEffect effect,
                          core_.Insert(k, v, value));
  InvalidateDigestsLocked(k, k);
  Undo undo;
  undo.kind = Undo::Kind::kInsert;
  undo.key = k;
  undo.insert_effect = effect;
  StateFor(txn).undo.push_back(std::move(undo));
  if (wal_ != nullptr) {
    REPDIR_RETURN_IF_ERROR(
        wal_->AppendOp(txn, storage::WalOp::Insert(k, v, value)));
  }
  return Status::Ok();
}

Status TxnParticipant::GuardedInsert(TxnId txn, const RepKey& k, Version v,
                                     const Value& value,
                                     Version expected_version) {
  // Locks RepModify(x, x) like Insert; the guard check rides inside the
  // same critical section. A refused guard still leaves the lock held (the
  // caller's transaction aborts and releases it), which is what keeps the
  // observed version stable for the caller's fallback decision.
  REPDIR_RETURN_IF_ERROR(AcquireLock(txn, LockMode::kModify,
                                     KeyRange::Point(k)));
  std::lock_guard<std::mutex> guard(mu_);
  StateFor(txn);
  REPDIR_ASSIGN_OR_RETURN(const InsertEffect effect,
                          core_.GuardedInsert(k, v, value, expected_version));
  InvalidateDigestsLocked(k, k);
  Undo undo;
  undo.kind = Undo::Kind::kInsert;
  undo.key = k;
  undo.insert_effect = effect;
  StateFor(txn).undo.push_back(std::move(undo));
  if (wal_ != nullptr) {
    REPDIR_RETURN_IF_ERROR(
        wal_->AppendOp(txn, storage::WalOp::Insert(k, v, value)));
  }
  return Status::Ok();
}

Result<CoalesceEffect> TxnParticipant::Coalesce(TxnId txn, const RepKey& l,
                                                const RepKey& h,
                                                Version gap_version) {
  if (!(l < h)) {
    return Status::InvalidArgument("Coalesce requires l < h");
  }
  // Locks RepModify(l, h) - Fig. 6.
  REPDIR_RETURN_IF_ERROR(AcquireLock(txn, LockMode::kModify, KeyRange{l, h}));
  std::lock_guard<std::mutex> guard(mu_);
  REPDIR_ASSIGN_OR_RETURN(CoalesceEffect effect,
                          core_.Coalesce(l, h, gap_version));
  InvalidateDigestsLocked(l, h);
  Undo undo;
  undo.kind = Undo::Kind::kCoalesce;
  undo.key = l;
  undo.high = h;
  undo.coalesce_effect = effect;
  StateFor(txn).undo.push_back(std::move(undo));
  if (wal_ != nullptr) {
    REPDIR_RETURN_IF_ERROR(
        wal_->AppendOp(txn, storage::WalOp::Coalesce(l, h, gap_version)));
  }
  return effect;
}

Result<std::vector<storage::RangeDigest>> TxnParticipant::DigestRange(
    const RepKey& low, const RepKey& high, std::uint32_t fanout) const {
  if (!(low < high)) {
    return Status::InvalidArgument("DigestRange requires low < high");
  }
  if (fanout == 0 || fanout > 64) {
    return Status::InvalidArgument("digest fanout out of range");
  }
  std::lock_guard<std::mutex> guard(mu_);
  const auto key = std::make_tuple(low, high, fanout);
  if (const auto it = split_cache_.find(key); it != split_cache_.end()) {
    digest_hits_->Increment();
    return it->second;
  }
  digest_misses_->Increment();
  std::vector<storage::RangeDigest> out =
      storage::SplitDigest(core_.storage(), low, high, fanout);
  if (split_cache_.size() >= kDigestCacheCap) split_cache_.clear();
  split_cache_.emplace(key, out);
  return out;
}

Result<std::vector<storage::RangeDigest>> TxnParticipant::DigestSpans(
    const std::vector<std::pair<RepKey, RepKey>>& spans) const {
  if (spans.empty() || spans.size() > 1024) {
    return Status::InvalidArgument("digest span count out of range");
  }
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<storage::RangeDigest> out;
  out.reserve(spans.size());
  for (const auto& [low, high] : spans) {
    if (!(low < high)) {
      return Status::InvalidArgument("DigestSpans requires low < high");
    }
    const auto key = std::make_pair(low, high);
    if (const auto it = span_cache_.find(key); it != span_cache_.end()) {
      digest_hits_->Increment();
      out.push_back(it->second);
      continue;
    }
    digest_misses_->Increment();
    out.push_back(storage::DigestOf(core_.storage(), low, high));
    if (span_cache_.size() >= kDigestCacheCap) span_cache_.clear();
    span_cache_.emplace(key, out.back());
  }
  return out;
}

void TxnParticipant::ClearDigestCache() const {
  std::lock_guard<std::mutex> guard(mu_);
  split_cache_.clear();
  span_cache_.clear();
}

void TxnParticipant::InvalidateDigestsLocked(const RepKey& lo,
                                             const RepKey& hi) const {
  // Linear scans are fine: the caches only fill while a reconciler is
  // walking this node, and both maps are bounded by kDigestCacheCap.
  for (auto it = split_cache_.begin(); it != split_cache_.end();) {
    const auto& [slow, shigh, fanout] = it->first;
    it = (slow <= hi && lo <= shigh) ? split_cache_.erase(it)
                                     : std::next(it);
  }
  for (auto it = span_cache_.begin(); it != span_cache_.end();) {
    const auto& [slow, shigh] = it->first;
    it = (slow <= hi && lo <= shigh) ? span_cache_.erase(it)
                                     : std::next(it);
  }
}

Result<storage::SegmentState> TxnParticipant::FetchRange(TxnId txn,
                                                         const RepKey& low,
                                                         const RepKey& high) {
  if (!(low < high)) {
    return Status::InvalidArgument("FetchRange requires low < high");
  }
  // Locks RepLookup(low, high): the whole segment, gap versions included,
  // stays put until this transaction's decision.
  REPDIR_RETURN_IF_ERROR(AcquireLock(txn, LockMode::kLookup,
                                     KeyRange{low, high}));
  std::lock_guard<std::mutex> guard(mu_);
  StateFor(txn);
  return storage::CollectSegment(core_.storage(), low, high);
}

// Decision discipline: the decision record is appended under mu_ (so it
// lands in the log in storage-mutation order), but the flush that makes it
// durable runs OUTSIDE mu_ via WalWriter::SyncDecision. Concurrently
// deciding transactions therefore share one group flush instead of
// serializing their fsyncs behind the participant mutex. Correctness is
// unchanged: OK is only returned - and locks only released - after the
// covering flush succeeded, so group commit never widens the durability
// window of an acknowledged decision.

Status TxnParticipant::Prepare(TxnId txn) {
  std::uint64_t seq = 0;
  bool logged = false;
  {
    std::lock_guard<std::mutex> guard(mu_);
    const auto it = txns_.find(txn);
    if (it == txns_.end()) {
      return Status::FailedPrecondition("Prepare of unknown txn");
    }
    it->second.prepared = true;
    if (wal_ != nullptr && !it->second.undo.empty()) {
      REPDIR_ASSIGN_OR_RETURN(
          seq,
          wal_->AppendDecisionRecord(storage::WalRecordType::kPrepare, txn));
      logged = true;
    }
  }
  if (logged) {
    return wal_->SyncDecision(seq, storage::WalRecordType::kPrepare);
  }
  return Status::Ok();
}

Status TxnParticipant::Commit(TxnId txn) {
  std::uint64_t seq = 0;
  bool logged = false;
  {
    std::lock_guard<std::mutex> guard(mu_);
    const auto it = txns_.find(txn);
    if (it == txns_.end()) {
      // Unknown here: the transaction never touched this participant (or
      // a commit retry after the first attempt succeeded). Idempotent OK.
      locks_.ReleaseAll(txn);
      return Status::Ok();
    }
    if (wal_ != nullptr && !it->second.undo.empty()) {
      REPDIR_ASSIGN_OR_RETURN(
          seq,
          wal_->AppendDecisionRecord(storage::WalRecordType::kCommit, txn));
      logged = true;
    }
  }
  if (logged) {
    REPDIR_RETURN_IF_ERROR(
        wal_->SyncDecision(seq, storage::WalRecordType::kCommit));
  }
  {
    std::lock_guard<std::mutex> guard(mu_);
    txns_.erase(txn);
  }
  locks_.ReleaseAll(txn);
  return Status::Ok();
}

Status TxnParticipant::Abort(TxnId txn) {
  std::uint64_t seq = 0;
  bool logged = false;
  {
    std::lock_guard<std::mutex> guard(mu_);
    const auto it = txns_.find(txn);
    if (it == txns_.end()) {
      locks_.ReleaseAll(txn);  // may hold read locks from a stateless touch
      return Status::Ok();
    }
    // Undo in reverse execution order. Each replayed undo mutates storage,
    // so it invalidates cached digests exactly like the forward op did (a
    // lock-free digest may have repopulated the cache since execution).
    auto& undo_list = it->second.undo;
    for (auto u = undo_list.rbegin(); u != undo_list.rend(); ++u) {
      switch (u->kind) {
        case Undo::Kind::kInsert:
          core_.UndoInsert(u->key, u->insert_effect);
          InvalidateDigestsLocked(u->key, u->key);
          break;
        case Undo::Kind::kCoalesce:
          core_.UndoCoalesce(u->key, u->coalesce_effect);
          InvalidateDigestsLocked(u->key, u->high);
          break;
      }
    }
    if (wal_ != nullptr && !undo_list.empty()) {
      REPDIR_ASSIGN_OR_RETURN(
          seq,
          wal_->AppendDecisionRecord(storage::WalRecordType::kAbort, txn));
      logged = true;
    }
    txns_.erase(it);
  }
  if (logged) {
    REPDIR_RETURN_IF_ERROR(
        wal_->SyncDecision(seq, storage::WalRecordType::kAbort));
  }
  locks_.ReleaseAll(txn);
  return Status::Ok();
}

bool TxnParticipant::IsActive(TxnId txn) const {
  std::lock_guard<std::mutex> guard(mu_);
  return txns_.contains(txn);
}

std::size_t TxnParticipant::ActiveCount() const {
  std::lock_guard<std::mutex> guard(mu_);
  return txns_.size();
}

Status TxnParticipant::WriteCheckpoint() {
  std::lock_guard<std::mutex> guard(mu_);
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("no WAL attached");
  }
  if (!txns_.empty()) {
    return Status::FailedPrecondition(
        "checkpoint requires a quiescent participant");
  }
  return wal_->WriteCheckpoint(core_.storage().Scan());
}

}  // namespace repdir::txn
