// Transaction identifiers: globally unique without coordination - the
// coordinator's node id lives in the high 32 bits and a per-coordinator
// sequence number in the low 32 bits.
#pragma once

#include <atomic>

#include "common/types.h"

namespace repdir::txn {

constexpr TxnId MakeTxnId(NodeId coordinator, std::uint32_t seq) {
  return (static_cast<TxnId>(coordinator) << 32) | seq;
}

constexpr NodeId CoordinatorOf(TxnId txn) {
  return static_cast<NodeId>(txn >> 32);
}

constexpr std::uint32_t SequenceOf(TxnId txn) {
  return static_cast<std::uint32_t>(txn);
}

/// Thread-safe per-coordinator id source. Sequence 0 is never issued, so
/// MakeTxnId(node, 0) can serve as a per-node sentinel.
class TxnIdFactory {
 public:
  explicit TxnIdFactory(NodeId coordinator) : coordinator_(coordinator) {}

  TxnId Next() {
    return MakeTxnId(coordinator_,
                     seq_.fetch_add(1, std::memory_order_relaxed));
  }

  NodeId coordinator() const { return coordinator_; }

 private:
  NodeId coordinator_;
  std::atomic<std::uint32_t> seq_{1};
};

}  // namespace repdir::txn
