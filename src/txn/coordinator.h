// Two-phase commit, coordinator side.
//
// The directory suite runs each user operation as a distributed transaction
// across the representatives it touched. Commit protocol (presumed abort):
//   phase 1: PREPARE to every participant; any failure or negative vote
//            aborts everywhere and reports kAborted;
//   phase 2: COMMIT to every participant; a participant unreachable in
//            phase 2 has prepared, so it will learn the outcome during
//            recovery (ResolveInDoubt) - the commit still succeeds.
//
// Each phase is one scatter-gather wave (net::RpcClient::ParallelCall), so
// a round costs one round-trip of latency instead of one per participant.
// A NO vote in phase 1 stops further PREPAREs from being issued, but every
// PREPARE already in flight is awaited before the abort wave starts - the
// abort therefore races no in-flight PREPARE of its own transaction.
#pragma once

#include <set>

#include "common/metrics.h"
#include "common/status.h"
#include "net/message.h"
#include "net/retry.h"
#include "net/rpc_client.h"
#include "txn/txn_id.h"

namespace repdir::txn {

/// Method ids of the participant's transaction-control RPCs, supplied by
/// the service that registered them (see rep/dir_rep_service.h).
struct TxnControlMethods {
  net::MethodId prepare;
  net::MethodId commit;
  net::MethodId abort;
};

class TwoPhaseCommitter {
 public:
  /// Control messages (prepare/commit/abort) are idempotent, so transient
  /// transport failures are retried per `retry`. Outcome counters
  /// ("txn.2pc.committed" / ".aborted" / ".readonly_committed") and phase
  /// latencies ("txn.2pc.prepare_us" / ".commit_us" / ".abort_us") go to
  /// the client's MetricsRegistry.
  TwoPhaseCommitter(const net::RpcClient& client, TxnControlMethods methods,
                    net::RetryPolicy retry = {})
      : client_(client),
        methods_(methods),
        retry_(retry),
        committed_(&client.metrics().counter("txn.2pc.committed")),
        aborted_(&client.metrics().counter("txn.2pc.aborted")),
        readonly_committed_(
            &client.metrics().counter("txn.2pc.readonly_committed")),
        prepare_us_(&client.metrics().distribution("txn.2pc.prepare_us")),
        commit_us_(&client.metrics().distribution("txn.2pc.commit_us")),
        abort_us_(&client.metrics().distribution("txn.2pc.abort_us")) {}

  /// Runs the full protocol for `txn` over `participants`. Returns OK when
  /// the transaction durably committed; kAborted when it rolled back.
  Status Commit(TxnId txn, const std::set<NodeId>& participants) const;

  /// Read-only fast path: a transaction that wrote nothing has no
  /// durability promise to collect, so phase 1 is skipped and a single
  /// COMMIT round releases the read locks everywhere.
  Status CommitReadOnly(TxnId txn, const std::set<NodeId>& participants) const;

  /// Best-effort abort everywhere (used on any execution error).
  void Abort(TxnId txn, const std::set<NodeId>& participants) const;

 private:
  /// One best-effort control wave (commit or abort) to every participant.
  net::FanOutResult<net::Empty> Wave(net::MethodId method, TxnId txn,
                                     const std::set<NodeId>& participants)
      const;

  const net::RpcClient& client_;
  TxnControlMethods methods_;
  net::RetryPolicy retry_;
  Counter* committed_;
  Counter* aborted_;
  Counter* readonly_committed_;
  DistributionStat* prepare_us_;
  DistributionStat* commit_us_;
  DistributionStat* abort_us_;
};

}  // namespace repdir::txn
