#include "txn/coordinator.h"

#include <string>
#include <vector>

#include "net/wire.h"

namespace repdir::txn {

net::FanOutResult<net::Empty> TwoPhaseCommitter::Wave(
    net::MethodId method, TxnId txn,
    const std::set<NodeId>& participants) const {
  const std::vector<NodeId> nodes(participants.begin(), participants.end());
  net::FanOutOptions options;
  options.retry = retry_;
  return client_.ParallelCall<net::Empty>(nodes, method, net::Empty{}, txn,
                                          options);
}

Status TwoPhaseCommitter::Commit(TxnId txn,
                                 const std::set<NodeId>& participants) const {
  // Phase 1: all participants must vote yes. The PREPAREs fan out in one
  // wave; a NO vote stops further issuance, but every PREPARE already in
  // flight is awaited, so the abort below reaches a stable participant set.
  const std::vector<NodeId> nodes(participants.begin(), participants.end());
  net::FanOutOptions options;
  options.retry = retry_;
  const auto votes = client_.ParallelCall<net::Empty>(
      nodes, methods_.prepare, net::Empty{}, txn, options,
      [](std::size_t, const Result<net::Empty>& vote) { return !vote.ok(); });
  for (std::size_t i = 0; i < votes.issued; ++i) {
    const Result<net::Empty>& vote = *votes.replies[i];
    if (!vote.ok()) {
      Abort(txn, participants);
      return Status::Aborted("prepare failed at node " +
                             std::to_string(nodes[i]) + ": " +
                             vote.status().ToString());
    }
  }

  // Phase 2: the decision is now commit. Unreachable participants have
  // prepared and will resolve via recovery; the transaction is committed.
  (void)Wave(methods_.commit, txn, participants);
  return Status::Ok();
}

Status TwoPhaseCommitter::CommitReadOnly(
    TxnId txn, const std::set<NodeId>& participants) const {
  (void)Wave(methods_.commit, txn, participants);
  return Status::Ok();
}

void TwoPhaseCommitter::Abort(TxnId txn,
                              const std::set<NodeId>& participants) const {
  (void)Wave(methods_.abort, txn, participants);
}

}  // namespace repdir::txn
