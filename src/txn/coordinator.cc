#include "txn/coordinator.h"

#include "net/wire.h"

namespace repdir::txn {

Status TwoPhaseCommitter::Call(NodeId node, net::MethodId method,
                               TxnId txn) const {
  return net::WithRetry(retry_, [&] {
    return client_.Call<net::Empty>(node, method, net::Empty{}, txn).status();
  });
}

Status TwoPhaseCommitter::Commit(TxnId txn,
                                 const std::set<NodeId>& participants) const {
  // Phase 1: all participants must vote yes.
  for (const NodeId node : participants) {
    const Status vote = Call(node, methods_.prepare, txn);
    if (!vote.ok()) {
      Abort(txn, participants);
      return Status::Aborted("prepare failed at node " + std::to_string(node) +
                             ": " + vote.ToString());
    }
  }

  // Phase 2: the decision is now commit. Unreachable participants have
  // prepared and will resolve via recovery; the transaction is committed.
  for (const NodeId node : participants) {
    (void)Call(node, methods_.commit, txn);
  }
  return Status::Ok();
}

Status TwoPhaseCommitter::CommitReadOnly(
    TxnId txn, const std::set<NodeId>& participants) const {
  for (const NodeId node : participants) {
    (void)Call(node, methods_.commit, txn);
  }
  return Status::Ok();
}

void TwoPhaseCommitter::Abort(TxnId txn,
                              const std::set<NodeId>& participants) const {
  for (const NodeId node : participants) {
    (void)Call(node, methods_.abort, txn);
  }
}

}  // namespace repdir::txn
