#include "txn/coordinator.h"

#include <string>
#include <vector>

#include "net/wire.h"

namespace repdir::txn {

net::FanOutResult<net::Empty> TwoPhaseCommitter::Wave(
    net::MethodId method, TxnId txn,
    const std::set<NodeId>& participants) const {
  const std::vector<NodeId> nodes(participants.begin(), participants.end());
  net::FanOutOptions options;
  options.retry = retry_;
  return client_.ParallelCall<net::Empty>(nodes, method, net::Empty{}, txn,
                                          options);
}

Status TwoPhaseCommitter::Commit(TxnId txn,
                                 const std::set<NodeId>& participants) const {
  // Phase 1: all participants must vote yes. The PREPAREs fan out in one
  // wave; a NO vote stops further issuance, but every PREPARE already in
  // flight is awaited, so the abort below reaches a stable participant set.
  const std::vector<NodeId> nodes(participants.begin(), participants.end());
  net::FanOutOptions options;
  options.retry = retry_;
  net::FanOutResult<net::Empty> votes;
  {
    ScopedLatency timer(client_.metrics(), *prepare_us_);
    votes = client_.ParallelCall<net::Empty>(
        nodes, methods_.prepare, net::Empty{}, txn, options,
        [](std::size_t, const Result<net::Empty>& vote) {
          return !vote.ok();
        });
  }
  for (std::size_t i = 0; i < votes.issued; ++i) {
    const Result<net::Empty>& vote = *votes.replies[i];
    if (!vote.ok()) {
      Abort(txn, participants);
      return Status::Aborted("prepare failed at node " +
                             std::to_string(nodes[i]) + ": " +
                             vote.status().ToString());
    }
  }

  // Phase 2: the decision is now commit. Unreachable participants have
  // prepared and will resolve via recovery; the transaction is committed.
  {
    ScopedLatency timer(client_.metrics(), *commit_us_);
    (void)Wave(methods_.commit, txn, participants);
  }
  committed_->Increment();
  return Status::Ok();
}

Status TwoPhaseCommitter::CommitReadOnly(
    TxnId txn, const std::set<NodeId>& participants) const {
  {
    ScopedLatency timer(client_.metrics(), *commit_us_);
    (void)Wave(methods_.commit, txn, participants);
  }
  readonly_committed_->Increment();
  return Status::Ok();
}

void TwoPhaseCommitter::Abort(TxnId txn,
                              const std::set<NodeId>& participants) const {
  // Counted here (not in Commit) so execution-error aborts initiated by the
  // suite are included, and a prepare-failure abort is counted exactly once.
  aborted_->Increment();
  ScopedLatency timer(client_.metrics(), *abort_us_);
  (void)Wave(methods_.abort, txn, participants);
}

}  // namespace repdir::txn
