#include "lock/range_lock_manager.h"

#include <cassert>
#include <chrono>

namespace repdir::lock {

std::set<TxnId> RangeLockManager::ConflictingHolders(
    TxnId txn, LockMode mode, const KeyRange& range) const {
  std::set<TxnId> holders;
  for (const Held& h : held_) {
    if (h.txn == txn) continue;
    if (!Compatible(h.mode, mode, h.range, range)) holders.insert(h.txn);
  }
  return holders;
}

Status RangeLockManager::Acquire(TxnId txn, LockMode mode,
                                 const KeyRange& range,
                                 DurationMicros timeout_micros) {
  assert(range.Valid());
  const TimeMicros wait_start = metrics_->NowMicros();
  std::unique_lock<std::mutex> lk(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_micros);
  bool waited = false;
  for (;;) {
    const auto holders = ConflictingHolders(txn, mode, range);
    if (holders.empty()) {
      held_.push_back(Held{txn, mode, range});
      ++stats_.acquisitions;
      acquisitions_->Increment();
      if (waited) {
        const TimeMicros now = metrics_->NowMicros();
        wait_us_->Record(
            now >= wait_start ? static_cast<double>(now - wait_start) : 0.0);
      }
      if (detector_ != nullptr && waited) detector_->ClearWait(txn, this);
      return Status::Ok();
    }
    if (!waited) {
      waited = true;
      ++stats_.waits;
      conflicts_->Increment();
    }
    if (detector_ != nullptr) {
      const Status st = detector_->AddWait(txn, this, holders);
      if (!st.ok()) {
        detector_->ClearWait(txn, this);
        ++stats_.aborts;
        abort_counter_->Increment();
        return st;
      }
    }
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
        !ConflictingHolders(txn, mode, range).empty()) {
      if (detector_ != nullptr) detector_->ClearWait(txn, this);
      ++stats_.aborts;
      abort_counter_->Increment();
      return Status::Aborted("lock wait timeout on " + range.ToString());
    }
  }
}

Status RangeLockManager::TryAcquire(TxnId txn, LockMode mode,
                                    const KeyRange& range) {
  assert(range.Valid());
  std::lock_guard<std::mutex> guard(mu_);
  if (!ConflictingHolders(txn, mode, range).empty()) {
    ++stats_.aborts;
    conflicts_->Increment();
    abort_counter_->Increment();
    return Status::Aborted(std::string(LockModeName(mode)) + " " +
                           range.ToString() + " would block");
  }
  held_.push_back(Held{txn, mode, range});
  ++stats_.acquisitions;
  acquisitions_->Increment();
  return Status::Ok();
}

void RangeLockManager::ReleaseAll(TxnId txn) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    std::erase_if(held_, [txn](const Held& h) { return h.txn == txn; });
  }
  if (detector_ != nullptr) detector_->ClearWait(txn, this);
  cv_.notify_all();
}

std::size_t RangeLockManager::HeldCount(TxnId txn) const {
  std::lock_guard<std::mutex> guard(mu_);
  std::size_t n = 0;
  for (const Held& h : held_) {
    if (h.txn == txn) ++n;
  }
  return n;
}

std::size_t RangeLockManager::TotalHeld() const {
  std::lock_guard<std::mutex> guard(mu_);
  return held_.size();
}

LockStats RangeLockManager::stats() const {
  std::lock_guard<std::mutex> guard(mu_);
  return stats_;
}

}  // namespace repdir::lock
