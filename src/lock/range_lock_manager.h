// RangeLockManager: per-representative lock table implementing strict
// two-phase locking over the Figure 7 lock classes.
//
// Transactions acquire range locks as their operations execute and release
// everything at commit/abort (ReleaseAll), which together with the Fig. 7
// compatibility relation makes each representative's schedules serializable;
// Traiger et al. then give global serializability (paper §3.3).
//
// Acquire() blocks (threaded deployments); TryAcquire() is the
// non-blocking variant used by the deterministic simulator. Deadlocks that
// span representatives are caught by the shared DeadlockDetector; a local
// wait that exceeds `timeout` resolves to kAborted as a safety net.
#pragma once

#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "lock/deadlock.h"
#include "lock/range_lock.h"

namespace repdir::lock {

struct LockStats {
  std::uint64_t acquisitions = 0;  ///< Granted lock requests.
  std::uint64_t waits = 0;         ///< Requests that had to block.
  std::uint64_t aborts = 0;        ///< Requests denied (deadlock/timeout).
};

class RangeLockManager {
 public:
  /// `detector` is shared across all managers of a deployment; may be null
  /// (then only timeouts break deadlocks). `metrics` receives the
  /// "lock.acquisitions" / "lock.conflicts" / "lock.aborts" counters and
  /// the "lock.wait_us" distribution; null means the default registry.
  explicit RangeLockManager(DeadlockDetector* detector = nullptr,
                            MetricsRegistry* metrics = nullptr)
      : detector_(detector),
        metrics_(metrics != nullptr ? metrics : &MetricsRegistry::Default()),
        acquisitions_(&metrics_->counter("lock.acquisitions")),
        conflicts_(&metrics_->counter("lock.conflicts")),
        abort_counter_(&metrics_->counter("lock.aborts")),
        wait_us_(&metrics_->distribution("lock.wait_us")) {}

  /// Blocks until the lock is granted, the wait would deadlock, or
  /// `timeout_micros` elapses. Re-entrant per transaction (a transaction
  /// never conflicts with itself).
  Status Acquire(TxnId txn, LockMode mode, const KeyRange& range,
                 DurationMicros timeout_micros = 10'000'000);

  /// Grants immediately or returns kAborted("would block").
  Status TryAcquire(TxnId txn, LockMode mode, const KeyRange& range);

  /// Strict 2PL release point: drops every lock held by `txn`.
  void ReleaseAll(TxnId txn);

  /// Number of locks currently held by `txn` (tests/diagnostics).
  std::size_t HeldCount(TxnId txn) const;

  /// Total locks held by anyone.
  std::size_t TotalHeld() const;

  LockStats stats() const;

 private:
  struct Held {
    TxnId txn;
    LockMode mode;
    KeyRange range;
  };

  /// Transactions (other than `txn`) holding conflicting locks. mu_ held.
  std::set<TxnId> ConflictingHolders(TxnId txn, LockMode mode,
                                     const KeyRange& range) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  DeadlockDetector* detector_;
  MetricsRegistry* metrics_;
  Counter* acquisitions_;
  Counter* conflicts_;
  Counter* abort_counter_;
  DistributionStat* wait_us_;
  std::vector<Held> held_;
  LockStats stats_;
};

}  // namespace repdir::lock
