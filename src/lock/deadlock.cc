#include "lock/deadlock.h"

#include <vector>

namespace repdir::lock {

bool DeadlockDetector::Reaches(TxnId from, TxnId target) const {
  std::vector<TxnId> stack{from};
  std::set<TxnId> visited;
  while (!stack.empty()) {
    const TxnId cur = stack.back();
    stack.pop_back();
    if (cur == target) return true;
    if (!visited.insert(cur).second) continue;
    const auto it = waits_for_.find(cur);
    if (it == waits_for_.end()) continue;
    for (const auto& [site, holders] : it->second) {
      for (const TxnId next : holders) stack.push_back(next);
    }
  }
  return false;
}

Status DeadlockDetector::AddWait(TxnId waiter, const void* site,
                                 const std::set<TxnId>& holders) {
  std::lock_guard<std::mutex> guard(mu_);
  // A cycle forms iff some holder (transitively) waits for the waiter.
  // The waiter's own already-registered waits at OTHER sites stay in the
  // graph: they are real concurrent waits of the same transaction.
  for (const TxnId holder : holders) {
    if (holder == waiter || Reaches(holder, waiter)) {
      ++deadlocks_;
      return Status::Aborted("deadlock: txn " + std::to_string(waiter) +
                             " would wait in a cycle");
    }
  }
  waits_for_[waiter][site] = holders;
  return Status::Ok();
}

void DeadlockDetector::ClearWait(TxnId waiter, const void* site) {
  std::lock_guard<std::mutex> guard(mu_);
  const auto it = waits_for_.find(waiter);
  if (it == waits_for_.end()) return;
  it->second.erase(site);
  if (it->second.empty()) waits_for_.erase(it);
}

void DeadlockDetector::ClearWait(TxnId waiter) {
  std::lock_guard<std::mutex> guard(mu_);
  waits_for_.erase(waiter);
}

}  // namespace repdir::lock
