// Lock classes for directory representatives (paper §3.1).
//
// Two type-specific lock modes over inclusive key ranges:
//   RepLookup(σ,τ) - set by DirRepLookup / Predecessor / Successor,
//   RepModify(σ,τ) - set by DirRepInsert / DirRepCoalesce.
// Compatibility (Figure 7): any two locks over non-intersecting ranges are
// compatible; over intersecting ranges only Lookup+Lookup is compatible.
#pragma once

#include <string>

#include "storage/rep_key.h"

namespace repdir::lock {

using storage::RepKey;

enum class LockMode : std::uint8_t { kLookup = 0, kModify = 1 };

inline std::string_view LockModeName(LockMode m) {
  return m == LockMode::kLookup ? "RepLookup" : "RepModify";
}

/// Inclusive key range [lo, hi]; lo <= hi required.
struct KeyRange {
  RepKey lo;
  RepKey hi;

  static KeyRange Point(RepKey k) { return KeyRange{k, k}; }

  bool Valid() const { return !(hi < lo); }

  bool Contains(const RepKey& k) const { return !(k < lo) && !(hi < k); }

  bool Intersects(const KeyRange& other) const {
    return !(hi < other.lo) && !(other.hi < lo);
  }

  std::string ToString() const {
    return "[" + lo.ToString() + ".." + hi.ToString() + "]";
  }
};

/// Figure 7: locks conflict iff their ranges intersect and at least one of
/// them is RepModify.
inline bool Compatible(LockMode held, LockMode requested,
                       const KeyRange& held_range,
                       const KeyRange& requested_range) {
  if (!held_range.Intersects(requested_range)) return true;
  return held == LockMode::kLookup && requested == LockMode::kLookup;
}

}  // namespace repdir::lock
