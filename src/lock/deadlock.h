// Global deadlock detection for distributed two-phase locking.
//
// Every RangeLockManager in a deployment shares one DeadlockDetector, so
// wait cycles that span representatives (txn A blocked at rep 1 by B, txn B
// blocked at rep 2 by A) are caught. Before a transaction blocks, its
// manager registers the wait edges; if adding them would close a cycle the
// requester is chosen as the victim and told to abort (kAborted).
//
// With the suite's parallel fan-out a single transaction can legitimately
// be blocked at several representatives at once (one wave slot per member),
// so each manager registers its edges under its own `site` key and the
// waits-for graph is the union across sites - one site's wait must never
// clobber or clear another's.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>

#include "common/status.h"
#include "common/types.h"

namespace repdir::lock {

class DeadlockDetector {
 public:
  /// Replaces the wait edges `waiter` registered from `site` (typically
  /// the calling lock manager) with edges to `holders`. Returns kAborted
  /// (without recording the edges) if that would create a cycle - the
  /// requester is the deadlock victim.
  Status AddWait(TxnId waiter, const void* site,
                 const std::set<TxnId>& holders);
  Status AddWait(TxnId waiter, const std::set<TxnId>& holders) {
    return AddWait(waiter, nullptr, holders);
  }

  /// Drops the wait edges `waiter` registered from `site` (it acquired,
  /// timed out, or aborted there); waits at other sites stay registered.
  void ClearWait(TxnId waiter, const void* site);

  /// Drops all of `waiter`'s wait edges, every site.
  void ClearWait(TxnId waiter);

  std::uint64_t deadlocks_detected() const {
    std::lock_guard<std::mutex> guard(mu_);
    return deadlocks_;
  }

 private:
  bool Reaches(TxnId from, TxnId target) const;  // mu_ held

  mutable std::mutex mu_;
  std::map<TxnId, std::map<const void*, std::set<TxnId>>> waits_for_;
  std::uint64_t deadlocks_ = 0;
};

}  // namespace repdir::lock
