#include "net/inproc_transport.h"

namespace repdir::net {

Status InProcTransport::Call(NodeId to, const RpcRequest& req,
                             RpcResponse& resp) {
  ++attempts_;

  const auto it = servers_.find(to);
  if (it == servers_.end()) {
    return Status::Unavailable("no such node " + std::to_string(to));
  }

  DurationMicros round_trip = 0;
  if (network_ != nullptr) {
    Result<DurationMicros> outbound = network_->DeliveryDelay(req.from, to);
    if (!outbound.ok()) return outbound.status();
    round_trip += *outbound;
  }

  // Exercise the real wire format on every call so that serialization bugs
  // cannot hide behind the in-process shortcut.
  const std::string wire = EncodeToString(req);
  RpcRequest decoded;
  REPDIR_RETURN_IF_ERROR(DecodeFromString(wire, decoded));

  ++delivered_[{req.from, to}];
  RpcResponse server_resp = it->second->Dispatch(decoded);
  if (network_ != nullptr && network_->ShouldDuplicate(req.from, to)) {
    // The network delivered the request twice; the server executes twice
    // and the client consumes the second response (handlers must be
    // idempotent - exercised by the duplication tests).
    server_resp = it->second->Dispatch(decoded);
  }

  if (network_ != nullptr) {
    Result<DurationMicros> inbound = network_->DeliveryDelay(to, req.from);
    if (!inbound.ok()) return inbound.status();
    round_trip += *inbound;
  }
  if (clock_ != nullptr && round_trip > 0) clock_->AdvanceBy(round_trip);

  const std::string resp_wire = EncodeToString(server_resp);
  return DecodeFromString(resp_wire, resp);
}

}  // namespace repdir::net
