// Deterministic in-process transport for the discrete-event simulator.
//
// A Call serializes the envelope, consults the network model for the request
// and the response legs (either may fail), advances the virtual clock by the
// round-trip latency, and dispatches synchronously to the destination
// server. Single-threaded by design.
#pragma once

#include <map>

#include "common/clock.h"
#include "net/rpc_server.h"
#include "net/transport.h"
#include "sim/network_model.h"

namespace repdir::net {

class InProcTransport final : public Transport {
 public:
  /// `clock` may be a VirtualClock (advanced by latency) or RealClock (then
  /// latency is only accounted, not waited). `network` may be null for a
  /// perfect network.
  explicit InProcTransport(VirtualClock* clock = nullptr,
                           sim::NetworkModel* network = nullptr)
      : clock_(clock), network_(network) {}

  /// Registers the server for a node. The server must outlive the transport.
  void RegisterNode(NodeId node, RpcServer& server) {
    servers_[node] = &server;
  }

  Status Call(NodeId to, const RpcRequest& req, RpcResponse& resp) override;

  std::uint64_t DeliveredCount(NodeId from, NodeId to) const override {
    const auto it = delivered_.find({from, to});
    return it == delivered_.end() ? 0 : it->second;
  }

  std::uint64_t TotalAttempts() const override { return attempts_; }

  void ResetCounters() {
    delivered_.clear();
    attempts_ = 0;
  }

 private:
  VirtualClock* clock_;
  sim::NetworkModel* network_;
  std::map<NodeId, RpcServer*> servers_;
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> delivered_;
  std::uint64_t attempts_ = 0;
};

}  // namespace repdir::net
