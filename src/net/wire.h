// Wire-format conventions for RPC messages: re-exports the shared serde
// helpers (common/serde.h) into the net namespace, which owns the RPC-side
// naming.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/serde.h"

namespace repdir::net {

using repdir::DecodeFromString;
using repdir::EncodeToString;
using repdir::WireMessage;
using Empty = repdir::EmptyMessage;

/// Fixed per-message envelope cost charged by the rpc.bytes_sent /
/// rpc.bytes_received counters on top of the serialized payload:
/// from(4) + method(4) + txn(8) + shard_epoch(8) for requests, code(1) +
/// two length-prefixed strings for responses - one honest constant for both
/// directions keeps the byte accounting transport-independent.
inline constexpr std::size_t kEnvelopeOverheadBytes = 24;

/// Bytes `msg` occupies on the wire as one enveloped message - payload plus
/// the fixed envelope cost above. The reconciler accounts its digest and
/// repair traffic with this (so "digest bytes vs full-state transfer" uses
/// the same arithmetic as the rpc.bytes_* counters) without reaching into
/// the transport.
template <WireMessage M>
std::size_t EncodedWireSize(const M& msg) {
  return EncodeToString(msg).size() + kEnvelopeOverheadBytes;
}

/// TCP framing of the multiplexed transport. Every frame, both directions,
/// is [u32 payload length][u64 correlation id][payload], little-endian.
/// The correlation id pairs a pipelined response with its request: a client
/// may have many requests in flight on one connection, and the server may
/// answer them in any order.
inline constexpr std::size_t kTcpFrameHeaderBytes = 12;
inline constexpr std::uint32_t kMaxTcpFrame = 16u << 20;  // 16 MiB cap

/// Appends one framed message to `out` (a connection's send buffer).
inline void AppendTcpFrame(std::string& out, std::uint64_t correlation,
                           std::string_view payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char header[kTcpFrameHeaderBytes];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  for (int i = 0; i < 8; ++i) {
    header[4 + i] = static_cast<char>((correlation >> (8 * i)) & 0xff);
  }
  out.append(header, kTcpFrameHeaderBytes);
  out.append(payload.data(), payload.size());
}

/// Decodes a frame header from `in` (must hold kTcpFrameHeaderBytes).
inline void DecodeTcpFrameHeader(const char* in, std::uint32_t& len,
                                 std::uint64_t& correlation) {
  len = 0;
  correlation = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[i]))
           << (8 * i);
  }
  for (int i = 0; i < 8; ++i) {
    correlation |=
        static_cast<std::uint64_t>(static_cast<unsigned char>(in[4 + i]))
        << (8 * i);
  }
}

}  // namespace repdir::net
