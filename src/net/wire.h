// Wire-format conventions for RPC messages: re-exports the shared serde
// helpers (common/serde.h) into the net namespace, which owns the RPC-side
// naming.
#pragma once

#include "common/serde.h"

namespace repdir::net {

using repdir::DecodeFromString;
using repdir::EncodeToString;
using repdir::WireMessage;
using Empty = repdir::EmptyMessage;

}  // namespace repdir::net
