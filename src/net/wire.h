// Wire-format conventions for RPC messages: re-exports the shared serde
// helpers (common/serde.h) into the net namespace, which owns the RPC-side
// naming.
#pragma once

#include "common/serde.h"

namespace repdir::net {

using repdir::DecodeFromString;
using repdir::EncodeToString;
using repdir::WireMessage;
using Empty = repdir::EmptyMessage;

/// Fixed per-message envelope cost charged by the rpc.bytes_sent /
/// rpc.bytes_received counters on top of the serialized payload:
/// from(4) + method(4) + txn(8) for requests, code(1) + two length-prefixed
/// strings for responses - one honest constant for both directions keeps
/// the byte accounting transport-independent.
inline constexpr std::size_t kEnvelopeOverheadBytes = 16;

}  // namespace repdir::net
