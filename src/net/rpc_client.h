// Typed RPC call helpers over a Transport:
//   * Call         - serialize, perform one synchronous call, map transport
//                    and application failures to Status, decode the reply.
//   * ParallelCall - typed scatter-gather: fan a request out to N nodes via
//                    Transport::CallAsync and gather a Result per node,
//                    with per-slot retries and an optional stop predicate.
//
// ParallelCall is the single fan-out primitive behind the directory suite's
// quorum operations and the two-phase-commit waves. Its contract is built
// for determinism and safety:
//
//   * Slots are issued in index order. Once the stop predicate fires, no
//     further slots are issued - on an inline transport (InProcTransport,
//     SequentialAdapter) this reproduces the sequential loop's early return
//     exactly, call for call.
//   * Every issued slot is awaited before returning; no call is abandoned
//     in flight. An abandoned transactional RPC could race the transaction's
//     own 2PC decision (re-acquiring locks after the abort released them)
//     or outlive the representative it targets, so "early quorum return" is
//     bounded to issuance, never to in-flight calls.
//   * Per-slot transport retries follow net::RetryPolicy, so the retry
//     policy lives in one place for sequential (WithRetry) and parallel
//     paths alike.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "net/retry.h"
#include "net/transport.h"
#include "net/wire.h"

namespace repdir::net {

/// One slot of a scatter-gather fan-out: a request destined for one node.
template <WireMessage Req>
struct CallSlot {
  NodeId to;
  Req request;
};

/// Outcome of a ParallelCall. `replies[i]` is empty iff slot i was never
/// issued (the stop predicate fired first); slots [0, issued) were handed
/// to the transport, in order, and have replies.
template <WireMessage Resp>
struct FanOutResult {
  std::vector<std::optional<Result<Resp>>> replies;
  std::size_t issued = 0;
};

struct FanOutOptions {
  /// Per-slot retry of transport-level failures (kUnavailable).
  RetryPolicy retry{1};
};

namespace detail {

template <WireMessage Resp>
struct FanOutState {
  std::mutex mu;
  std::condition_variable cv;
  Transport* transport = nullptr;
  std::vector<NodeId> to;
  std::vector<RpcRequest> requests;
  std::vector<std::optional<Result<Resp>>> replies;
  /// Invoked under `mu`, once per completed slot, in completion order.
  std::function<bool(std::size_t, const Result<Resp>&)> stop_fn;
  std::size_t issued = 0;
  std::size_t completed = 0;
  bool stop = false;
};

template <WireMessage Resp>
Result<Resp> MergeReply(const Status& transport_status, RpcResponse& resp) {
  REPDIR_RETURN_IF_ERROR(transport_status);
  REPDIR_RETURN_IF_ERROR(resp.ToStatus());
  Resp typed;
  REPDIR_RETURN_IF_ERROR(DecodeFromString(resp.payload, typed));
  return typed;
}

template <WireMessage Resp>
void IssueSlot(const std::shared_ptr<FanOutState<Resp>>& state, std::size_t i,
               std::uint32_t attempts_left) {
  state->transport->CallAsync(
      state->to[i], state->requests[i],
      [state, i, attempts_left](Status st, RpcResponse resp) {
        Result<Resp> out = MergeReply<Resp>(st, resp);
        if (!out.ok() && RetryPolicy::Retriable(out.status()) &&
            attempts_left > 1) {
          IssueSlot(state, i, attempts_left - 1);
          return;
        }
        std::lock_guard<std::mutex> lk(state->mu);
        state->replies[i] = std::move(out);
        ++state->completed;
        if (!state->stop && state->stop_fn &&
            state->stop_fn(i, *state->replies[i])) {
          state->stop = true;
        }
        state->cv.notify_all();
      });
}

}  // namespace detail

class RpcClient {
 public:
  RpcClient(Transport& transport, NodeId self)
      : transport_(&transport), self_(self) {}

  NodeId self() const { return self_; }
  Transport& transport() const { return *transport_; }

  /// Calls `method` on node `to` within transaction `txn`.
  template <WireMessage Resp, WireMessage Req>
  Result<Resp> Call(NodeId to, MethodId method, const Req& request,
                    TxnId txn = kInvalidTxn) const {
    RpcRequest req = Envelope(method, txn, EncodeToString(request));
    RpcResponse resp;
    REPDIR_RETURN_IF_ERROR(transport_->Call(to, req, resp));
    REPDIR_RETURN_IF_ERROR(resp.ToStatus());

    Resp typed;
    REPDIR_RETURN_IF_ERROR(DecodeFromString(resp.payload, typed));
    return typed;
  }

  /// Scatter-gathers one request per slot (see the file comment for the
  /// issuance/await contract). `stop` - if given - is invoked under the
  /// fan-out's internal lock after each completion; returning true stops
  /// further slots from being issued.
  template <WireMessage Resp, WireMessage Req>
  FanOutResult<Resp> ParallelCall(
      const std::vector<CallSlot<Req>>& slots, MethodId method,
      TxnId txn = kInvalidTxn, FanOutOptions options = {},
      std::function<bool(std::size_t, const Result<Resp>&)> stop =
          nullptr) const {
    auto state = std::make_shared<detail::FanOutState<Resp>>();
    state->transport = transport_;
    state->to.reserve(slots.size());
    state->requests.reserve(slots.size());
    for (const CallSlot<Req>& slot : slots) {
      state->to.push_back(slot.to);
      state->requests.push_back(
          Envelope(method, txn, EncodeToString(slot.request)));
    }
    state->replies.resize(slots.size());
    state->stop_fn = std::move(stop);

    const std::uint32_t attempts =
        options.retry.max_attempts == 0 ? 1 : options.retry.max_attempts;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      {
        std::lock_guard<std::mutex> lk(state->mu);
        if (state->stop) break;
        ++state->issued;
      }
      detail::IssueSlot(state, i, attempts);
    }

    FanOutResult<Resp> result;
    {
      std::unique_lock<std::mutex> lk(state->mu);
      state->cv.wait(lk, [&] { return state->completed == state->issued; });
      result.replies = state->replies;
      result.issued = state->issued;
    }
    return result;
  }

  /// Convenience: the same request fanned out to `to`.
  template <WireMessage Resp, WireMessage Req>
  FanOutResult<Resp> ParallelCall(
      const std::vector<NodeId>& to, MethodId method, const Req& request,
      TxnId txn = kInvalidTxn, FanOutOptions options = {},
      std::function<bool(std::size_t, const Result<Resp>&)> stop =
          nullptr) const {
    std::vector<CallSlot<Req>> slots;
    slots.reserve(to.size());
    for (const NodeId node : to) slots.push_back({node, request});
    return ParallelCall<Resp>(slots, method, txn, std::move(options),
                              std::move(stop));
  }

 private:
  RpcRequest Envelope(MethodId method, TxnId txn, std::string payload) const {
    RpcRequest req;
    req.from = self_;
    req.method = method;
    req.txn = txn;
    req.payload = std::move(payload);
    return req;
  }

  Transport* transport_;
  NodeId self_;
};

}  // namespace repdir::net
