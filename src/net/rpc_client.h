// Typed RPC call helpers over a Transport:
//   * Call         - serialize, perform one synchronous call, map transport
//                    and application failures to Status, decode the reply.
//   * ParallelCall - typed scatter-gather: fan a request out to N nodes via
//                    Transport::CallAsync and gather a Result per node,
//                    with per-slot retries and an optional stop predicate.
//
// ParallelCall is the single fan-out primitive behind the directory suite's
// quorum operations and the two-phase-commit waves. Its contract is built
// for determinism and safety:
//
//   * Slots are issued in index order. Once the stop predicate fires, no
//     further slots are issued - on an inline transport (InProcTransport,
//     SequentialAdapter) this reproduces the sequential loop's early return
//     exactly, call for call.
//   * Every issued slot is awaited before returning; no call is abandoned
//     in flight. An abandoned transactional RPC could race the transaction's
//     own 2PC decision (re-acquiring locks after the abort released them)
//     or outlive the representative it targets, so "early quorum return" is
//     bounded to issuance, never to in-flight calls.
//   * Per-slot transport retries follow net::RetryPolicy, so the retry
//     policy lives in one place for sequential (WithRetry) and parallel
//     paths alike.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "net/retry.h"
#include "net/transport.h"
#include "net/wire.h"

namespace repdir::net {

/// Cached metric handles for one RPC method: per-attempt latency and
/// attempt count ("rpc.method.<id>.latency_us" / ".calls").
struct PerMethodMetrics {
  DistributionStat* latency = nullptr;
  Counter* calls = nullptr;
};

/// One slot of a scatter-gather fan-out: a request destined for one node.
template <WireMessage Req>
struct CallSlot {
  NodeId to;
  Req request;
};

/// Outcome of a ParallelCall. `replies[i]` is empty iff slot i was never
/// issued (the stop predicate fired first); slots [0, issued) were handed
/// to the transport, in order, and have replies.
template <WireMessage Resp>
struct FanOutResult {
  std::vector<std::optional<Result<Resp>>> replies;
  std::size_t issued = 0;
};

struct FanOutOptions {
  /// Per-slot retry of transport-level failures (kUnavailable), including
  /// its backoff schedule and sleep hook.
  RetryPolicy retry{1};
};

namespace detail {

template <WireMessage Resp>
struct FanOutState {
  std::mutex mu;
  std::condition_variable cv;
  Transport* transport = nullptr;
  std::vector<NodeId> to;
  std::vector<RpcRequest> requests;
  std::vector<std::optional<Result<Resp>>> replies;
  /// Invoked under `mu`, once per completed slot, in completion order.
  std::function<bool(std::size_t, const Result<Resp>&)> stop_fn;
  std::size_t issued = 0;
  std::size_t completed = 0;
  bool stop = false;

  /// Retry/backoff schedule and instrumentation (owned by the client's
  /// MetricsRegistry; recorded on whichever thread completes the slot).
  RetryPolicy retry;
  std::uint32_t max_attempts = 1;
  MetricsRegistry* metrics = nullptr;
  Counter* attempts = nullptr;
  Counter* failures = nullptr;
  Counter* retries = nullptr;
  Counter* bytes_sent = nullptr;
  Counter* bytes_received = nullptr;
  PerMethodMetrics method;
};

template <WireMessage Resp>
Result<Resp> MergeReply(const Status& transport_status, RpcResponse& resp) {
  REPDIR_RETURN_IF_ERROR(transport_status);
  REPDIR_RETURN_IF_ERROR(resp.ToStatus());
  Resp typed;
  REPDIR_RETURN_IF_ERROR(DecodeFromString(resp.payload, typed));
  return typed;
}

template <WireMessage Resp>
void IssueSlot(const std::shared_ptr<FanOutState<Resp>>& state, std::size_t i,
               std::uint32_t attempts_left) {
  state->attempts->Increment();
  state->method.calls->Increment();
  state->bytes_sent->Increment(state->requests[i].payload.size() +
                               kEnvelopeOverheadBytes);
  const TimeMicros start = state->metrics->NowMicros();
  state->transport->CallAsync(
      state->to[i], state->requests[i],
      [state, i, attempts_left, start](Status st, RpcResponse resp) {
        if (st.ok()) {
          state->bytes_received->Increment(resp.payload.size() +
                                           resp.error_message.size() +
                                           kEnvelopeOverheadBytes);
        }
        Result<Resp> out = MergeReply<Resp>(st, resp);
        const TimeMicros now = state->metrics->NowMicros();
        state->method.latency->Record(
            now >= start ? static_cast<double>(now - start) : 0.0);
        if (!out.ok()) state->failures->Increment();
        if (!out.ok() && RetryPolicy::Retriable(out.status()) &&
            attempts_left > 1) {
          state->retries->Increment();
          const std::uint32_t retry_no = state->max_attempts - attempts_left + 1;
          state->metrics->distribution("rpc.backoff_us")
              .Record(static_cast<double>(state->retry.BackoffDelay(retry_no)));
          // Backoff runs on the completing thread (a pool worker, or
          // inline on deterministic transports - their tests inject an
          // instant sleep hook).
          state->retry.Backoff(retry_no);
          IssueSlot(state, i, attempts_left - 1);
          return;
        }
        std::lock_guard<std::mutex> lk(state->mu);
        state->replies[i] = std::move(out);
        ++state->completed;
        if (!state->stop && state->stop_fn &&
            state->stop_fn(i, *state->replies[i])) {
          state->stop = true;
        }
        state->cv.notify_all();
      });
}

}  // namespace detail

class RpcClient {
 public:
  /// `metrics` receives per-call instrumentation ("rpc.attempts",
  /// "rpc.failures", "rpc.retries", "rpc.wave_width", and per-method
  /// latency/call metrics); null means the process-wide default registry.
  RpcClient(Transport& transport, NodeId self,
            MetricsRegistry* metrics = nullptr)
      : transport_(&transport),
        self_(self),
        metrics_(metrics != nullptr ? metrics : &MetricsRegistry::Default()),
        attempts_(&metrics_->counter("rpc.attempts")),
        failures_(&metrics_->counter("rpc.failures")),
        retries_(&metrics_->counter("rpc.retries")),
        bytes_sent_(&metrics_->counter("rpc.bytes_sent")),
        bytes_received_(&metrics_->counter("rpc.bytes_received")),
        wave_width_(&metrics_->distribution("rpc.wave_width")),
        methods_(std::make_shared<MethodTable>()) {}

  NodeId self() const { return self_; }
  Transport& transport() const { return *transport_; }
  MetricsRegistry& metrics() const { return *metrics_; }

  /// Shard-map version stamped into every outgoing envelope (0 = not
  /// shard-aware; representatives skip the epoch check). Shared between
  /// copies of the client so a router refresh reaches every fan-out path.
  void set_shard_epoch(std::uint64_t epoch) const {
    shard_epoch_->store(epoch, std::memory_order_relaxed);
  }
  std::uint64_t shard_epoch() const {
    return shard_epoch_->load(std::memory_order_relaxed);
  }

  /// Calls `method` on node `to` within transaction `txn`.
  template <WireMessage Resp, WireMessage Req>
  Result<Resp> Call(NodeId to, MethodId method, const Req& request,
                    TxnId txn = kInvalidTxn) const {
    RpcRequest req = Envelope(method, txn, EncodeToString(request));
    RpcResponse resp;
    const PerMethodMetrics pm = MetricsFor(method);
    attempts_->Increment();
    pm.calls->Increment();
    bytes_sent_->Increment(req.payload.size() + kEnvelopeOverheadBytes);
    const TimeMicros start = metrics_->NowMicros();

    Status st = transport_->Call(to, req, resp);
    if (st.ok()) {
      bytes_received_->Increment(resp.payload.size() +
                                 resp.error_message.size() +
                                 kEnvelopeOverheadBytes);
    }
    if (st.ok()) st = resp.ToStatus();
    Resp typed;
    if (st.ok()) st = DecodeFromString(resp.payload, typed);

    const TimeMicros now = metrics_->NowMicros();
    pm.latency->Record(now >= start ? static_cast<double>(now - start) : 0.0);
    if (!st.ok()) {
      failures_->Increment();
      return st;
    }
    return typed;
  }

  /// Scatter-gathers one request per slot (see the file comment for the
  /// issuance/await contract). `stop` - if given - is invoked under the
  /// fan-out's internal lock after each completion; returning true stops
  /// further slots from being issued.
  template <WireMessage Resp, WireMessage Req>
  FanOutResult<Resp> ParallelCall(
      const std::vector<CallSlot<Req>>& slots, MethodId method,
      TxnId txn = kInvalidTxn, FanOutOptions options = {},
      std::function<bool(std::size_t, const Result<Resp>&)> stop =
          nullptr) const {
    auto state = std::make_shared<detail::FanOutState<Resp>>();
    state->transport = transport_;
    state->to.reserve(slots.size());
    state->requests.reserve(slots.size());
    for (const CallSlot<Req>& slot : slots) {
      state->to.push_back(slot.to);
      state->requests.push_back(
          Envelope(method, txn, EncodeToString(slot.request)));
    }
    state->replies.resize(slots.size());
    state->stop_fn = std::move(stop);

    const std::uint32_t attempts =
        options.retry.max_attempts == 0 ? 1 : options.retry.max_attempts;
    state->retry = options.retry;
    state->max_attempts = attempts;
    state->metrics = metrics_;
    state->attempts = attempts_;
    state->failures = failures_;
    state->retries = retries_;
    state->bytes_sent = bytes_sent_;
    state->bytes_received = bytes_received_;
    state->method = MetricsFor(method);
    wave_width_->Record(static_cast<double>(slots.size()));
    for (std::size_t i = 0; i < slots.size(); ++i) {
      {
        std::lock_guard<std::mutex> lk(state->mu);
        if (state->stop) break;
        ++state->issued;
      }
      detail::IssueSlot(state, i, attempts);
    }

    FanOutResult<Resp> result;
    {
      std::unique_lock<std::mutex> lk(state->mu);
      state->cv.wait(lk, [&] { return state->completed == state->issued; });
      result.replies = state->replies;
      result.issued = state->issued;
    }
    return result;
  }

  /// Convenience: the same request fanned out to `to`.
  template <WireMessage Resp, WireMessage Req>
  FanOutResult<Resp> ParallelCall(
      const std::vector<NodeId>& to, MethodId method, const Req& request,
      TxnId txn = kInvalidTxn, FanOutOptions options = {},
      std::function<bool(std::size_t, const Result<Resp>&)> stop =
          nullptr) const {
    std::vector<CallSlot<Req>> slots;
    slots.reserve(to.size());
    for (const NodeId node : to) slots.push_back({node, request});
    return ParallelCall<Resp>(slots, method, txn, std::move(options),
                              std::move(stop));
  }

 private:
  /// Lazily-built cache of per-method metric handles, shared between copies
  /// of the client (metric objects themselves live in the registry and have
  /// stable addresses; this just avoids a registry map lookup per call).
  struct MethodTable {
    std::mutex mu;
    std::map<MethodId, PerMethodMetrics> by_method;
  };

  PerMethodMetrics MetricsFor(MethodId method) const {
    std::lock_guard<std::mutex> lk(methods_->mu);
    auto it = methods_->by_method.find(method);
    if (it == methods_->by_method.end()) {
      const std::string prefix = "rpc.method." + std::to_string(method);
      PerMethodMetrics pm;
      pm.latency = &metrics_->distribution(prefix + ".latency_us");
      pm.calls = &metrics_->counter(prefix + ".calls");
      it = methods_->by_method.emplace(method, pm).first;
    }
    return it->second;
  }

  RpcRequest Envelope(MethodId method, TxnId txn, std::string payload) const {
    RpcRequest req;
    req.from = self_;
    req.method = method;
    req.txn = txn;
    req.shard_epoch = shard_epoch_->load(std::memory_order_relaxed);
    req.payload = std::move(payload);
    return req;
  }

  Transport* transport_;
  NodeId self_;
  MetricsRegistry* metrics_;
  Counter* attempts_;
  Counter* failures_;
  Counter* retries_;
  Counter* bytes_sent_;
  Counter* bytes_received_;
  DistributionStat* wave_width_;
  std::shared_ptr<MethodTable> methods_;
  std::shared_ptr<std::atomic<std::uint64_t>> shard_epoch_ =
      std::make_shared<std::atomic<std::uint64_t>>(0);
};

}  // namespace repdir::net
