// Typed RPC call helper: serializes a request struct, performs the call,
// maps transport and application failures to Status, and decodes the typed
// response.
#pragma once

#include "net/transport.h"
#include "net/wire.h"

namespace repdir::net {

class RpcClient {
 public:
  RpcClient(Transport& transport, NodeId self)
      : transport_(&transport), self_(self) {}

  NodeId self() const { return self_; }
  Transport& transport() const { return *transport_; }

  /// Calls `method` on node `to` within transaction `txn`.
  template <WireMessage Resp, WireMessage Req>
  Result<Resp> Call(NodeId to, MethodId method, const Req& request,
                    TxnId txn = kInvalidTxn) const {
    RpcRequest req;
    req.from = self_;
    req.method = method;
    req.txn = txn;
    req.payload = EncodeToString(request);

    RpcResponse resp;
    REPDIR_RETURN_IF_ERROR(transport_->Call(to, req, resp));
    REPDIR_RETURN_IF_ERROR(resp.ToStatus());

    Resp typed;
    REPDIR_RETURN_IF_ERROR(DecodeFromString(resp.payload, typed));
    return typed;
  }

 private:
  Transport* transport_;
  NodeId self_;
};

}  // namespace repdir::net
