// Typed RPC call helpers over a Transport:
//   * Call         - serialize, perform one synchronous call, map transport
//                    and application failures to Status, decode the reply.
//   * ParallelCall - typed scatter-gather: fan a request out to N nodes via
//                    Transport::CallAsync and gather a Result per node,
//                    with per-slot retries and an optional stop predicate.
//
// ParallelCall is the single fan-out primitive behind the directory suite's
// quorum operations and the two-phase-commit waves. Its contract is built
// for determinism and safety:
//
//   * Slots are issued in index order. Once the stop predicate fires, no
//     further slots are issued - on an inline transport (InProcTransport,
//     SequentialAdapter) this reproduces the sequential loop's early return
//     exactly, call for call.
//   * Every issued slot is awaited before returning; no call is abandoned
//     in flight. An abandoned transactional RPC could race the transaction's
//     own 2PC decision (re-acquiring locks after the abort released them)
//     or outlive the representative it targets, so "early quorum return" is
//     bounded to issuance, never to in-flight calls.
//   * Per-slot transport retries follow net::RetryPolicy, so the retry
//     policy lives in one place for sequential (WithRetry) and parallel
//     paths alike.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "net/retry.h"
#include "net/scoreboard.h"
#include "net/transport.h"
#include "net/wire.h"

namespace repdir::net {

/// Cached metric handles for one RPC method: per-attempt latency and
/// attempt count ("rpc.method.<id>.latency_us" / ".calls").
struct PerMethodMetrics {
  DistributionStat* latency = nullptr;
  Counter* calls = nullptr;
};

/// One slot of a scatter-gather fan-out: a request destined for one node.
template <WireMessage Req>
struct CallSlot {
  NodeId to;
  Req request;
};

/// Outcome of a ParallelCall. `replies[i]` is empty iff slot i was never
/// issued (the stop predicate fired first); slots [0, issued) were handed
/// to the transport, in order, and have replies. A HedgedParallelCall may
/// additionally leave an ISSUED slot's reply empty: the quota closed while
/// the slot was still in flight and it was detached (the transport layer
/// sends it a best-effort cancel on late completion - see the hedging
/// contract on HedgedParallelCall).
template <WireMessage Resp>
struct FanOutResult {
  std::vector<std::optional<Result<Resp>>> replies;
  std::size_t issued = 0;
  bool hedged = false;  ///< A hedge wave was launched (hedged calls only).
};

struct FanOutOptions {
  /// Per-slot retry of transport-level failures (kUnavailable), including
  /// its backoff schedule and sleep hook.
  RetryPolicy retry{1};
};

namespace detail {

template <WireMessage Resp>
struct FanOutState {
  std::mutex mu;
  std::condition_variable cv;
  Transport* transport = nullptr;
  std::vector<NodeId> to;
  std::vector<RpcRequest> requests;
  std::vector<std::optional<Result<Resp>>> replies;
  /// Invoked under `mu`, once per completed slot, in completion order.
  std::function<bool(std::size_t, const Result<Resp>&)> stop_fn;
  std::size_t issued = 0;
  std::size_t completed = 0;
  bool stop = false;

  /// Retry/backoff schedule and instrumentation (owned by the client's
  /// MetricsRegistry; recorded on whichever thread completes the slot).
  RetryPolicy retry;
  std::uint32_t max_attempts = 1;
  MetricsRegistry* metrics = nullptr;
  Counter* attempts = nullptr;
  Counter* failures = nullptr;
  Counter* retries = nullptr;
  Counter* bytes_sent = nullptr;
  Counter* bytes_received = nullptr;
  PerMethodMetrics method;

  /// Optional latency/health scoreboard fed per slot issue/completion.
  std::shared_ptr<NodeScoreboard> scoreboard;

  /// Hedging support: once the caller has returned (quota closed with
  /// slots still in flight) `abandoned` flips and each late completion
  /// fires `cancel_request` at its node - best effort, no reply awaited -
  /// so any server-side state the detached call created (read locks under
  /// strict 2PL) is released rather than leaked. The shared_ptr keeps this
  /// state alive until the last detached slot has completed.
  std::atomic<bool> abandoned{false};
  bool has_cancel = false;
  RpcRequest cancel_request;
  Counter* hedge_cancels = nullptr;
};

template <WireMessage Resp>
Result<Resp> MergeReply(const Status& transport_status, RpcResponse& resp) {
  REPDIR_RETURN_IF_ERROR(transport_status);
  REPDIR_RETURN_IF_ERROR(resp.ToStatus());
  Resp typed;
  REPDIR_RETURN_IF_ERROR(DecodeFromString(resp.payload, typed));
  return typed;
}

template <WireMessage Resp>
void IssueSlot(const std::shared_ptr<FanOutState<Resp>>& state, std::size_t i,
               std::uint32_t attempts_left) {
  state->attempts->Increment();
  state->method.calls->Increment();
  state->bytes_sent->Increment(state->requests[i].payload.size() +
                               kEnvelopeOverheadBytes);
  if (state->scoreboard) state->scoreboard->OnIssue(state->to[i]);
  const TimeMicros start = state->metrics->NowMicros();
  state->transport->CallAsync(
      state->to[i], state->requests[i],
      [state, i, attempts_left, start](Status st, RpcResponse resp) {
        if (st.ok()) {
          state->bytes_received->Increment(resp.payload.size() +
                                           resp.error_message.size() +
                                           kEnvelopeOverheadBytes);
        }
        Result<Resp> out = MergeReply<Resp>(st, resp);
        const TimeMicros now = state->metrics->NowMicros();
        const double latency_us =
            now >= start ? static_cast<double>(now - start) : 0.0;
        state->method.latency->Record(latency_us);
        if (state->scoreboard) {
          // Reachability, not application success: an application error
          // proves the node alive (see NodeScoreboard::OnComplete).
          const bool reachable =
              out.ok() || out.status().code() != StatusCode::kUnavailable;
          state->scoreboard->OnComplete(state->to[i],
                                        state->requests[i].method, latency_us,
                                        reachable);
        }
        if (!out.ok()) state->failures->Increment();
        if (!out.ok() && RetryPolicy::Retriable(out.status()) &&
            attempts_left > 1 &&
            !state->abandoned.load(std::memory_order_acquire)) {
          state->retries->Increment();
          const std::uint32_t retry_no = state->max_attempts - attempts_left + 1;
          state->metrics->distribution("rpc.backoff_us")
              .Record(static_cast<double>(state->retry.BackoffDelay(retry_no)));
          // Backoff runs on the completing thread (a pool worker, or
          // inline on deterministic transports - their tests inject an
          // instant sleep hook).
          state->retry.Backoff(retry_no);
          IssueSlot(state, i, attempts_left - 1);
          return;
        }
        bool late = false;
        {
          std::lock_guard<std::mutex> lk(state->mu);
          state->replies[i] = std::move(out);
          ++state->completed;
          late = state->abandoned.load(std::memory_order_relaxed);
          if (!state->stop && state->stop_fn &&
              state->stop_fn(i, *state->replies[i])) {
            state->stop = true;
          }
          state->cv.notify_all();
        }
        if (late && state->has_cancel) {
          // The caller returned without this slot: whether the call
          // executed (reply in hand) or may have executed with the reply
          // lost, the node must not be left holding transaction state.
          // The cancel rides strictly behind the data call, so it cannot
          // release locks the winning quorum still relies on.
          if (state->hedge_cancels != nullptr) {
            state->hedge_cancels->Increment();
          }
          state->transport->CallAsync(state->to[i], state->cancel_request,
                                      [state](Status, RpcResponse) {});
        }
      });
}

}  // namespace detail

class RpcClient {
 public:
  /// `metrics` receives per-call instrumentation ("rpc.attempts",
  /// "rpc.failures", "rpc.retries", "rpc.wave_width", and per-method
  /// latency/call metrics); null means the process-wide default registry.
  RpcClient(Transport& transport, NodeId self,
            MetricsRegistry* metrics = nullptr)
      : transport_(&transport),
        self_(self),
        metrics_(metrics != nullptr ? metrics : &MetricsRegistry::Default()),
        attempts_(&metrics_->counter("rpc.attempts")),
        failures_(&metrics_->counter("rpc.failures")),
        retries_(&metrics_->counter("rpc.retries")),
        bytes_sent_(&metrics_->counter("rpc.bytes_sent")),
        bytes_received_(&metrics_->counter("rpc.bytes_received")),
        wave_width_(&metrics_->distribution("rpc.wave_width")),
        methods_(std::make_shared<MethodTable>()) {}

  NodeId self() const { return self_; }
  Transport& transport() const { return *transport_; }
  MetricsRegistry& metrics() const { return *metrics_; }

  /// Attaches a latency/health scoreboard: every slot this client issues
  /// (sync and fan-out alike) reports its completion latency and
  /// reachability. Null detaches. The shared_ptr is copied into in-flight
  /// fan-out state, so detached hedge slots may outlive the client safely.
  void set_scoreboard(std::shared_ptr<NodeScoreboard> scoreboard) {
    scoreboard_ = std::move(scoreboard);
  }
  const std::shared_ptr<NodeScoreboard>& scoreboard() const {
    return scoreboard_;
  }

  /// Shard-map version stamped into every outgoing envelope (0 = not
  /// shard-aware; representatives skip the epoch check). Shared between
  /// copies of the client so a router refresh reaches every fan-out path.
  void set_shard_epoch(std::uint64_t epoch) const {
    shard_epoch_->store(epoch, std::memory_order_relaxed);
  }
  std::uint64_t shard_epoch() const {
    return shard_epoch_->load(std::memory_order_relaxed);
  }

  /// Calls `method` on node `to` within transaction `txn`.
  template <WireMessage Resp, WireMessage Req>
  Result<Resp> Call(NodeId to, MethodId method, const Req& request,
                    TxnId txn = kInvalidTxn) const {
    RpcRequest req = Envelope(method, txn, EncodeToString(request));
    RpcResponse resp;
    const PerMethodMetrics pm = MetricsFor(method);
    attempts_->Increment();
    pm.calls->Increment();
    bytes_sent_->Increment(req.payload.size() + kEnvelopeOverheadBytes);
    if (scoreboard_) scoreboard_->OnIssue(to);
    const TimeMicros start = metrics_->NowMicros();

    Status st = transport_->Call(to, req, resp);
    if (st.ok()) {
      bytes_received_->Increment(resp.payload.size() +
                                 resp.error_message.size() +
                                 kEnvelopeOverheadBytes);
    }
    if (st.ok()) st = resp.ToStatus();
    Resp typed;
    if (st.ok()) st = DecodeFromString(resp.payload, typed);

    const TimeMicros now = metrics_->NowMicros();
    const double latency_us =
        now >= start ? static_cast<double>(now - start) : 0.0;
    pm.latency->Record(latency_us);
    if (scoreboard_) {
      scoreboard_->OnComplete(
          to, method, latency_us,
          st.ok() || st.code() != StatusCode::kUnavailable);
    }
    if (!st.ok()) {
      failures_->Increment();
      return st;
    }
    return typed;
  }

  /// Scatter-gathers one request per slot (see the file comment for the
  /// issuance/await contract). `stop` - if given - is invoked under the
  /// fan-out's internal lock after each completion; returning true stops
  /// further slots from being issued.
  template <WireMessage Resp, WireMessage Req>
  FanOutResult<Resp> ParallelCall(
      const std::vector<CallSlot<Req>>& slots, MethodId method,
      TxnId txn = kInvalidTxn, FanOutOptions options = {},
      std::function<bool(std::size_t, const Result<Resp>&)> stop =
          nullptr) const {
    auto state = std::make_shared<detail::FanOutState<Resp>>();
    state->transport = transport_;
    state->to.reserve(slots.size());
    state->requests.reserve(slots.size());
    for (const CallSlot<Req>& slot : slots) {
      state->to.push_back(slot.to);
      state->requests.push_back(
          Envelope(method, txn, EncodeToString(slot.request)));
    }
    state->replies.resize(slots.size());
    state->stop_fn = std::move(stop);

    const std::uint32_t attempts =
        options.retry.max_attempts == 0 ? 1 : options.retry.max_attempts;
    state->retry = options.retry;
    state->max_attempts = attempts;
    state->metrics = metrics_;
    state->attempts = attempts_;
    state->failures = failures_;
    state->retries = retries_;
    state->bytes_sent = bytes_sent_;
    state->bytes_received = bytes_received_;
    state->method = MetricsFor(method);
    state->scoreboard = scoreboard_;
    wave_width_->Record(static_cast<double>(slots.size()));
    for (std::size_t i = 0; i < slots.size(); ++i) {
      {
        std::lock_guard<std::mutex> lk(state->mu);
        if (state->stop) break;
        ++state->issued;
      }
      detail::IssueSlot(state, i, attempts);
    }

    FanOutResult<Resp> result;
    {
      std::unique_lock<std::mutex> lk(state->mu);
      state->cv.wait(lk, [&] { return state->completed == state->issued; });
      result.replies = state->replies;
      result.issued = state->issued;
    }
    return result;
  }

  /// Convenience: the same request fanned out to `to`.
  template <WireMessage Resp, WireMessage Req>
  FanOutResult<Resp> ParallelCall(
      const std::vector<NodeId>& to, MethodId method, const Req& request,
      TxnId txn = kInvalidTxn, FanOutOptions options = {},
      std::function<bool(std::size_t, const Result<Resp>&)> stop =
          nullptr) const {
    std::vector<CallSlot<Req>> slots;
    slots.reserve(to.size());
    for (const NodeId node : to) slots.push_back({node, request});
    return ParallelCall<Resp>(slots, method, txn, std::move(options),
                              std::move(stop));
  }

  /// Hedged scatter-gather for READ-ONLY single-wave operations.
  ///
  /// Slots [0, primary_count) issue immediately; the rest are spares held
  /// in reserve. The call returns as soon as `quota` (invoked under the
  /// fan-out lock over the reply vector) is satisfied, without waiting for
  /// stragglers. If the quota has not closed once every issued slot has
  /// completed, or after `hedge_delay_us` elapses with slots still in
  /// flight, ONE hedge wave issues every spare ("rpc.hedges"; a spare
  /// reply that then helps close the quota counts "rpc.hedge_wins").
  ///
  /// Detachment contract: slots still in flight at return are NOT awaited.
  /// Each one, on late completion, fires `cancel_method` (with `txn`) at
  /// its node - best effort, "rpc.hedge_cancels" - so locks a detached
  /// call acquired under strict 2PL are released. Callers must therefore
  /// (a) never enroll a reply-less slot as a transaction participant, and
  /// (b) only hedge transactions whose ONLY wave this is: a later wave
  /// re-touching a cancelled node would race its own cancellation. The
  /// transport must outlive detached completions (it already must outlive
  /// every in-flight call).
  ///
  /// On an inline transport every primary completes during issuance, so
  /// the wait never blocks, the hedge never fires when the quota closes,
  /// and the call is bit-identical to ParallelCall over the primaries.
  template <WireMessage Resp, WireMessage Req>
  FanOutResult<Resp> HedgedParallelCall(
      const std::vector<CallSlot<Req>>& slots, std::size_t primary_count,
      MethodId method, TxnId txn, FanOutOptions options,
      DurationMicros hedge_delay_us,
      std::function<bool(const std::vector<std::optional<Result<Resp>>>&)>
          quota,
      MethodId cancel_method) const {
    auto state = std::make_shared<detail::FanOutState<Resp>>();
    state->transport = transport_;
    state->to.reserve(slots.size());
    state->requests.reserve(slots.size());
    for (const CallSlot<Req>& slot : slots) {
      state->to.push_back(slot.to);
      state->requests.push_back(
          Envelope(method, txn, EncodeToString(slot.request)));
    }
    state->replies.resize(slots.size());

    const std::uint32_t attempts =
        options.retry.max_attempts == 0 ? 1 : options.retry.max_attempts;
    state->retry = options.retry;
    state->max_attempts = attempts;
    state->metrics = metrics_;
    state->attempts = attempts_;
    state->failures = failures_;
    state->retries = retries_;
    state->bytes_sent = bytes_sent_;
    state->bytes_received = bytes_received_;
    state->method = MetricsFor(method);
    state->scoreboard = scoreboard_;
    state->has_cancel = cancel_method != 0;
    if (state->has_cancel) {
      state->cancel_request =
          Envelope(cancel_method, txn, EncodeToString(Empty{}));
      state->hedge_cancels = &metrics_->counter("rpc.hedge_cancels");
    }

    primary_count = std::min(primary_count, slots.size());
    wave_width_->Record(static_cast<double>(primary_count));
    for (std::size_t i = 0; i < primary_count; ++i) {
      {
        std::lock_guard<std::mutex> lk(state->mu);
        ++state->issued;
      }
      detail::IssueSlot(state, i, attempts);
    }

    FanOutResult<Resp> result;
    std::unique_lock<std::mutex> lk(state->mu);
    const auto quota_met = [&] { return quota(state->replies); };
    const auto settled = [&] {
      return quota_met() || state->completed == state->issued;
    };
    if (!settled()) {
      state->cv.wait_for(lk, std::chrono::microseconds(hedge_delay_us),
                         settled);
    }
    if (!quota_met() && primary_count < slots.size()) {
      // One hedge wave, ever: every spare, issued together. Bounding the
      // hedge keeps worst-case message overhead at one extra wave per op.
      result.hedged = true;
      metrics_->counter("rpc.hedges").Increment();
      const std::size_t spares = slots.size() - primary_count;
      state->issued += spares;
      lk.unlock();
      for (std::size_t i = primary_count; i < slots.size(); ++i) {
        detail::IssueSlot(state, i, attempts);
      }
      lk.lock();
      state->cv.wait(lk, settled);
    } else {
      state->cv.wait(lk, settled);
    }
    if (state->completed < state->issued) {
      // Quota closed with slots in flight: detach them (late completions
      // self-cancel, see IssueSlot) and snapshot what we have.
      state->abandoned.store(true, std::memory_order_release);
    }
    result.replies = state->replies;
    result.issued = state->issued;
    if (result.hedged && quota_met()) {
      for (std::size_t i = primary_count; i < slots.size(); ++i) {
        if (state->replies[i].has_value() && state->replies[i]->ok()) {
          metrics_->counter("rpc.hedge_wins").Increment();
          break;
        }
      }
    }
    return result;
  }

 private:
  /// Lazily-built cache of per-method metric handles, shared between copies
  /// of the client (metric objects themselves live in the registry and have
  /// stable addresses; this just avoids a registry map lookup per call).
  struct MethodTable {
    std::mutex mu;
    std::map<MethodId, PerMethodMetrics> by_method;
  };

  PerMethodMetrics MetricsFor(MethodId method) const {
    std::lock_guard<std::mutex> lk(methods_->mu);
    auto it = methods_->by_method.find(method);
    if (it == methods_->by_method.end()) {
      const std::string prefix = "rpc.method." + std::to_string(method);
      PerMethodMetrics pm;
      pm.latency = &metrics_->distribution(prefix + ".latency_us");
      pm.calls = &metrics_->counter(prefix + ".calls");
      it = methods_->by_method.emplace(method, pm).first;
    }
    return it->second;
  }

  RpcRequest Envelope(MethodId method, TxnId txn, std::string payload) const {
    RpcRequest req;
    req.from = self_;
    req.method = method;
    req.txn = txn;
    req.shard_epoch = shard_epoch_->load(std::memory_order_relaxed);
    req.payload = std::move(payload);
    return req;
  }

  Transport* transport_;
  NodeId self_;
  MetricsRegistry* metrics_;
  Counter* attempts_;
  Counter* failures_;
  Counter* retries_;
  Counter* bytes_sent_;
  Counter* bytes_received_;
  DistributionStat* wave_width_;
  std::shared_ptr<NodeScoreboard> scoreboard_;
  std::shared_ptr<MethodTable> methods_;
  std::shared_ptr<std::atomic<std::uint64_t>> shard_epoch_ =
      std::make_shared<std::atomic<std::uint64_t>>(0);
};

}  // namespace repdir::net
