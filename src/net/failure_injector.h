// Transport decorator that injects failures for fault-tolerance tests:
// fail-next-N, fail every call to a node, fail with a given probability.
// Deterministic under its seed.
#pragma once

#include <atomic>
#include <mutex>
#include <set>

#include "common/rng.h"
#include "net/transport.h"

namespace repdir::net {

class FailureInjector final : public Transport {
 public:
  explicit FailureInjector(Transport& inner, std::uint64_t seed = 7)
      : inner_(&inner), rng_(seed) {}

  /// Every call to `node` fails until ClearBlocked().
  void BlockNode(NodeId node) {
    std::lock_guard<std::mutex> guard(mu_);
    blocked_.insert(node);
  }
  void UnblockNode(NodeId node) {
    std::lock_guard<std::mutex> guard(mu_);
    blocked_.erase(node);
  }
  void ClearBlocked() {
    std::lock_guard<std::mutex> guard(mu_);
    blocked_.clear();
  }

  /// The next `n` calls (to any node) fail.
  void FailNext(std::uint32_t n) { fail_next_.store(n); }

  /// Each call independently fails with probability `p`.
  void SetFailureProbability(double p) {
    std::lock_guard<std::mutex> guard(mu_);
    probability_ = p;
  }

  Status Call(NodeId to, const RpcRequest& req, RpcResponse& resp) override {
    REPDIR_RETURN_IF_ERROR(Roll(to));
    return inner_->Call(to, req, resp);
  }

  /// The injection decision is made on the issuing thread (deterministic
  /// wrt issue order); surviving calls keep the inner transport's
  /// concurrency.
  void CallAsync(NodeId to, const RpcRequest& req, AsyncDone done) override {
    if (Status st = Roll(to); !st.ok()) {
      done(std::move(st), RpcResponse{});
      return;
    }
    inner_->CallAsync(to, req, std::move(done));
  }

  std::uint64_t DeliveredCount(NodeId from, NodeId to) const override {
    return inner_->DeliveredCount(from, to);
  }
  std::uint64_t TotalAttempts() const override {
    return inner_->TotalAttempts();
  }

 private:
  /// Decides whether this call is failure-injected. FailNext is consumed
  /// FIRST: it promises "the next n calls fail", and checking the
  /// probability roll before it let random failures slip in front, pushing
  /// the n consumed tokens onto an unpredictable suffix of later calls.
  Status Roll(NodeId to) {
    std::uint32_t expect = fail_next_.load();
    while (expect > 0) {
      if (fail_next_.compare_exchange_weak(expect, expect - 1)) {
        return Status::Unavailable("injected: fail-next");
      }
    }
    std::lock_guard<std::mutex> guard(mu_);
    if (blocked_.contains(to)) {
      return Status::Unavailable("injected: node blocked");
    }
    if (probability_ > 0.0 && rng_.Chance(probability_)) {
      return Status::Unavailable("injected: random failure");
    }
    return Status::Ok();
  }

  Transport* inner_;
  mutable std::mutex mu_;
  Rng rng_;
  std::set<NodeId> blocked_;
  double probability_ = 0.0;
  std::atomic<std::uint32_t> fail_next_{0};
};

}  // namespace repdir::net
