// Per-node latency and health scoreboard feeding adaptive quorum planning.
//
// Every RPC slot the client issues reports back here: an EWMA of per-method
// latency, a count of requests currently in flight, and a failure streak per
// node. The scoreboard turns those into two signals the planner consumes:
//
//   * Score(node, method) - predicted completion cost: the EWMA latency
//     scaled by (1 + outstanding), so a node already loaded with in-flight
//     work predicts slower than an idle one even at equal measured latency.
//   * HealthOf(node) - kHealthy / kProbation / kQuarantined. A streak of
//     transport failures quarantines the node for a bounded, doubling
//     interval; when the interval expires the node enters probation, where
//     the planner deliberately ranks it FIRST so one live operation probes
//     it. A successful probe clears the streak and the backoff (the node
//     re-earns traffic); another failure re-quarantines it for twice as
//     long, up to the cap. This is what keeps a recovered node from being
//     starved forever by its own history.
//
// Time comes from MetricsRegistry::NowMicros, so deterministic harnesses
// (virtual clock) drive quarantine expiry deterministically and unit tests
// can inject a fake clock. All methods are thread-safe; feeding the board
// from transport completion threads is the intended use.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>

#include "common/metrics.h"
#include "common/types.h"
#include "net/message.h"

namespace repdir::net {

class NodeScoreboard {
 public:
  struct Options {
    /// EWMA smoothing: new = alpha * sample + (1 - alpha) * old.
    double alpha = 0.2;
    /// Latency assumed for a (node, method) with no samples yet. Unmeasured
    /// nodes therefore tie with each other and the power-of-two-choices
    /// tie-break spreads the first wave of traffic across them.
    double default_latency_us = 1000.0;
    /// Consecutive transport failures that quarantine a node.
    std::uint32_t quarantine_after = 3;
    /// First quarantine interval; doubles per re-quarantine up to the cap.
    DurationMicros quarantine_base_us = 250'000;
    DurationMicros quarantine_cap_us = 30'000'000;
  };

  enum class Health : std::uint8_t { kHealthy, kProbation, kQuarantined };

  explicit NodeScoreboard(MetricsRegistry* metrics = nullptr)
      : NodeScoreboard(metrics, Options()) {}

  NodeScoreboard(MetricsRegistry* metrics, Options options)
      : options_(options),
        metrics_(metrics != nullptr ? metrics : &MetricsRegistry::Default()),
        quarantines_(&metrics_->counter("scoreboard.quarantines")),
        probations_(&metrics_->counter("scoreboard.probations")),
        recoveries_(&metrics_->counter("scoreboard.recoveries")) {}

  /// A request to `node` was handed to the transport.
  void OnIssue(NodeId node) {
    std::lock_guard<std::mutex> lk(mu_);
    ++nodes_[node].outstanding;
  }

  /// The request completed. `ok` is transport-level reachability: an
  /// application error (kNotFound, kVersionMismatch, ...) proves the node
  /// alive and counts as success; only kUnavailable counts as failure.
  /// `latency_us` is meaningful only when `ok`.
  void OnComplete(NodeId node, MethodId method, double latency_us, bool ok) {
    std::lock_guard<std::mutex> lk(mu_);
    NodeState& s = nodes_[node];
    if (s.outstanding > 0) --s.outstanding;
    if (ok) {
      Ewma& e = s.by_method[method];
      e.value = e.samples == 0
                    ? latency_us
                    : options_.alpha * latency_us +
                          (1.0 - options_.alpha) * e.value;
      ++e.samples;
      s.overall.value = s.overall.samples == 0
                            ? latency_us
                            : options_.alpha * latency_us +
                                  (1.0 - options_.alpha) * s.overall.value;
      ++s.overall.samples;
      if (s.failure_streak >= options_.quarantine_after) {
        recoveries_->Increment();  // probation probe answered: re-earned
      }
      s.failure_streak = 0;
      s.quarantine_backoff_us = 0;
      s.quarantined_until = 0;
      return;
    }
    ++s.failure_streak;
    if (s.failure_streak >= options_.quarantine_after &&
        Now() >= s.quarantined_until) {
      s.quarantine_backoff_us =
          s.quarantine_backoff_us == 0
              ? options_.quarantine_base_us
              : std::min<DurationMicros>(s.quarantine_backoff_us * 2,
                                         options_.quarantine_cap_us);
      s.quarantined_until = Now() + s.quarantine_backoff_us;
      quarantines_->Increment();
    }
  }

  Health HealthOf(NodeId node) const {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = nodes_.find(node);
    if (it == nodes_.end()) return Health::kHealthy;
    const NodeState& s = it->second;
    if (s.failure_streak < options_.quarantine_after) return Health::kHealthy;
    if (Now() < s.quarantined_until) return Health::kQuarantined;
    probations_->Increment();
    return Health::kProbation;
  }

  /// EWMA latency prediction for (node, method); falls back to the node's
  /// overall EWMA, then to Options::default_latency_us.
  double PredictedLatency(NodeId node, MethodId method) const {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = nodes_.find(node);
    if (it == nodes_.end()) return options_.default_latency_us;
    const auto mit = it->second.by_method.find(method);
    if (mit != it->second.by_method.end() && mit->second.samples > 0) {
      return mit->second.value;
    }
    if (it->second.overall.samples > 0) return it->second.overall.value;
    return options_.default_latency_us;
  }

  std::uint32_t Outstanding(NodeId node) const {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = nodes_.find(node);
    return it == nodes_.end() ? 0 : it->second.outstanding;
  }

  /// Predicted completion cost: EWMA latency scaled by queue depth.
  double Score(NodeId node, MethodId method) const {
    return PredictedLatency(node, method) *
           (1.0 + static_cast<double>(Outstanding(node)));
  }

  const Options& options() const { return options_; }

 private:
  struct Ewma {
    double value = 0.0;
    std::uint64_t samples = 0;
  };
  struct NodeState {
    std::map<MethodId, Ewma> by_method;
    Ewma overall;
    std::uint32_t outstanding = 0;
    std::uint32_t failure_streak = 0;
    DurationMicros quarantine_backoff_us = 0;
    TimeMicros quarantined_until = 0;
  };

  TimeMicros Now() const { return metrics_->NowMicros(); }

  Options options_;
  MetricsRegistry* metrics_;
  Counter* quarantines_;
  Counter* probations_;
  Counter* recoveries_;
  mutable std::mutex mu_;
  std::map<NodeId, NodeState> nodes_;
};

}  // namespace repdir::net
