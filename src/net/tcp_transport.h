// Real-socket transport: directory representatives served over TCP, with
// one persistent multiplexed connection per peer.
//
// Wire format (both directions): [u32 length][u64 correlation id][payload]
// (see wire.h). A client keeps ONE connection per destination and pipelines
// every concurrent call over it: CallAsync appends a frame to the
// connection's shared send buffer, registers the correlation id, and an
// epoll event loop owns all sockets - draining send buffers, reassembling
// response frames, and completing calls as their correlated responses
// arrive (in any order). Completions are dispatched on a small worker pool
// so a slow continuation (retry backoff, fan-out bookkeeping) never stalls
// the loop.
//
// TcpServer accepts on a loopback/host port, reads frames on a per-
// connection reader thread, and dispatches each decoded request to a shared
// worker pool; responses are written - correlation id attached - as their
// handlers finish, so an N-deep pipeline of requests executes concurrently
// and may complete out of order.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/rpc_server.h"
#include "net/transport.h"
#include "net/worker_pool.h"

namespace repdir::net {

class TcpServer {
 public:
  explicit TcpServer(RpcServer& service) : service_(&service) {}
  ~TcpServer() { Stop(); }

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting. Returns
  /// the bound port.
  Result<std::uint16_t> Start(std::uint16_t port = 0);

  /// Stops accepting, closes all connections, joins all threads.
  void Stop();

  std::uint16_t port() const { return port_; }
  std::uint64_t connections_served() const {
    return connections_.load(std::memory_order_relaxed);
  }
  /// Requests dispatched across all connections (tests: pipelining depth).
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  /// One accepted connection. The reader thread parses request frames; each
  /// request runs on the shared pool and writes its response under
  /// `write_mu`, so pipelined responses interleave but frames stay intact.
  /// The fd closes with the last reference - an in-flight handler can never
  /// write into a recycled descriptor.
  struct Conn {
    explicit Conn(int conn_fd) : fd(conn_fd) {}
    ~Conn();
    int fd;
    std::mutex write_mu;
  };

  void AcceptLoop();
  void ServeConnection(const std::shared_ptr<Conn>& conn);

  RpcServer* service_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::thread> readers_;             // guarded by mu_
  std::vector<std::shared_ptr<Conn>> conns_;     // guarded by mu_
  /// Handler pool, sized to the hardware: request execution is CPU-bound
  /// (storage + locks), so a 16-thread pool per server on a small host
  /// oversubscribes the machine once several servers and clients share it
  /// - measured as TCP throughput REGRESSING from 4 to 8 bench clients.
  WorkerPool pool_{WorkerPool::DefaultThreads(16)};
};

class TcpTransport final : public Transport {
 public:
  TcpTransport();
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Registers where a node can be reached. Re-routing a node (a respawned
  /// process on a new port) drops any existing connection to it.
  void AddRoute(NodeId node, const std::string& host, std::uint16_t port);

  Status Call(NodeId to, const RpcRequest& req, RpcResponse& resp) override;

  /// Pipelines the call onto the destination's persistent connection and
  /// returns immediately; `done` runs on a completion worker when the
  /// correlated response arrives (or the connection dies).
  void CallAsync(NodeId to, const RpcRequest& req, AsyncDone done) override;

  std::uint64_t DeliveredCount(NodeId from, NodeId to) const override;
  std::uint64_t TotalAttempts() const override {
    return attempts_.load(std::memory_order_relaxed);
  }

  /// Connections this transport ever opened (tests: reuse assertions).
  std::uint64_t connections_opened() const {
    return connections_opened_.load(std::memory_order_relaxed);
  }

 private:
  struct Route {
    std::string host;
    std::uint16_t port = 0;
  };

  /// One pending pipelined call.
  struct PendingCall {
    AsyncDone done;
    NodeId from = 0;
    NodeId to = 0;
  };

  /// One persistent connection, shared between callers (who append frames
  /// under `mu`) and the event loop (which owns fd readiness, the read
  /// buffer, and frame reassembly).
  struct Conn {
    int fd = -1;
    NodeId node = 0;
    std::mutex mu;  ///< Guards out/out_off/pending/next_corr/want_write/dead.
    std::string out;          ///< Shared send buffer (all pipelined frames).
    std::size_t out_off = 0;  ///< Sent prefix of `out`.
    std::map<std::uint64_t, PendingCall> pending;
    std::uint64_t next_corr = 1;
    bool want_write = false;  ///< Send buffer non-empty; loop arms EPOLLOUT.
    bool dead = false;
    std::string in;  ///< Read-reassembly buffer; loop thread only.
  };

  /// Returns the live connection for `to`, dialing one if needed.
  Result<std::shared_ptr<Conn>> GetConn(NodeId to);

  /// Event-loop body and helpers (loop thread only).
  void Loop();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  void HandleWritable(const std::shared_ptr<Conn>& conn);
  /// Fails every pending call on `conn` with kUnavailable and forgets it.
  void DropConn(const std::shared_ptr<Conn>& conn);
  /// Applies each connection's desired epoll interest set.
  void SyncInterest();
  void Wake();

  /// Completes one call on the completion pool.
  void Complete(PendingCall call, Status st, RpcResponse resp);

  mutable std::mutex mu_;  ///< routes_, conns_, delivered_.
  std::map<NodeId, Route> routes_;
  std::map<NodeId, std::shared_ptr<Conn>> conns_;
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> delivered_;
  std::atomic<std::uint64_t> attempts_{0};
  std::atomic<std::uint64_t> connections_opened_{0};

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread loop_;
  std::mutex ctl_mu_;  ///< Guards to_register_ / to_drop_ (loop handoff).
  std::vector<std::shared_ptr<Conn>> to_register_;
  std::vector<std::shared_ptr<Conn>> to_drop_;
  /// fd -> conn, loop thread only; holds the loop's reference.
  std::map<int, std::shared_ptr<Conn>> loop_conns_;

  /// Completion pool, sized to the hardware (see TcpServer::pool_).
  WorkerPool done_pool_{WorkerPool::DefaultThreads(8)};
};

}  // namespace repdir::net
