// Real-socket transport: directory representatives served over TCP.
//
// Wire format per call: [u32 frame length][RpcRequest bytes] from client to
// server, [u32 frame length][RpcResponse bytes] back. One outstanding call
// per connection; the client keeps a small pool of idle connections per
// destination, so concurrent callers multiplex over parallel connections.
//
// TcpServer accepts on a loopback/host port and serves each connection on
// its own thread (synchronous dispatch into the RpcServer, like the other
// transports). TcpTransport implements the Transport interface over routes
// (node id -> host:port), making DirectorySuite and the baselines runnable
// across real processes.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/rpc_server.h"
#include "net/transport.h"
#include "net/worker_pool.h"

namespace repdir::net {

class TcpServer {
 public:
  explicit TcpServer(RpcServer& service) : service_(&service) {}
  ~TcpServer() { Stop(); }

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting. Returns
  /// the bound port.
  Result<std::uint16_t> Start(std::uint16_t port = 0);

  /// Stops accepting, closes all connections, joins all threads.
  void Stop();

  std::uint16_t port() const { return port_; }
  std::uint64_t connections_served() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  RpcServer* service_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::thread> workers_;  // guarded by mu_
  std::vector<int> open_fds_;         // guarded by mu_
};

class TcpTransport final : public Transport {
 public:
  TcpTransport() = default;
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Registers where a node can be reached.
  void AddRoute(NodeId node, const std::string& host, std::uint16_t port);

  Status Call(NodeId to, const RpcRequest& req, RpcResponse& resp) override;

  /// Dispatches on the worker pool; each concurrent call checks out its own
  /// pooled connection, so fan-out calls proceed over parallel sockets.
  void CallAsync(NodeId to, const RpcRequest& req, AsyncDone done) override;

  std::uint64_t DeliveredCount(NodeId from, NodeId to) const override;
  std::uint64_t TotalAttempts() const override {
    return attempts_.load(std::memory_order_relaxed);
  }

 private:
  struct Route {
    std::string host;
    std::uint16_t port;
  };

  /// Checks out an idle pooled connection or opens a new one.
  Result<int> Checkout(NodeId to);
  void CheckIn(NodeId to, int fd);

  mutable std::mutex mu_;
  std::map<NodeId, Route> routes_;
  std::map<NodeId, std::vector<int>> idle_;  // connection pool
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> delivered_;
  std::atomic<std::uint64_t> attempts_{0};
  WorkerPool pool_{16};
};

}  // namespace repdir::net
