// Fixed-size pool of worker threads executing submitted tasks in FIFO
// order. The concurrent transports (ThreadedTransport, TcpTransport) run
// their asynchronous calls on such a pool so a scatter-gather fan-out
// overlaps the per-call network latency.
//
// Threads start lazily on the first Submit (a transport used only
// synchronously never spawns them). Shutdown - and the destructor - drains
// the queue before joining, so every submitted task runs to completion;
// tasks submitted after Shutdown execute inline on the submitter.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace repdir::net {

class WorkerPool {
 public:
  explicit WorkerPool(std::size_t threads)
      : threads_(threads == 0 ? 1 : threads) {}

  /// Pool size for CPU-bound work: the hardware concurrency clamped to
  /// [2, cap]. Sizing compute pools past the core count only adds
  /// scheduler pressure - on a small host a fleet of transports each
  /// spawning `cap` workers oversubscribes the machine and throughput
  /// REGRESSES as clients are added (pools whose threads mostly sleep,
  /// like ThreadedTransport's latency simulation, should keep an explicit
  /// large size instead).
  static std::size_t DefaultThreads(std::size_t cap) {
    std::size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = cap;  // unknown: keep the historical size
    return std::min(cap, std::max<std::size_t>(2, hw));
  }
  ~WorkerPool() { Shutdown(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues `task`. Safe to call from within a running task (used by
  /// asynchronous call retries).
  void Submit(std::function<void()> task);

  /// Runs queued tasks to completion, then joins all workers. Idempotent.
  void Shutdown();

 private:
  void Loop();

  std::size_t threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
};

}  // namespace repdir::net
