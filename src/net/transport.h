// Transport abstraction: synchronous request/response between nodes.
//
// Two implementations exist:
//   * InProcTransport  - deterministic, single-threaded, virtual-clock time;
//                        used by the simulation experiments (Figs. 14/15).
//   * ThreadedTransport - thread-safe loopback with real latency sleeps;
//                        used by the concurrency benchmarks and stress tests.
// Both serialize the envelope through the wire format, so encode/decode is
// exercised on every call, and both honour a sim::NetworkModel for failures.
#pragma once

#include <functional>
#include <utility>

#include "common/status.h"
#include "net/message.h"

namespace repdir::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Delivers `req` to node `to` and fills `resp`. A non-OK return means the
  /// *transport* failed (node down, partition, drop, timeout); application
  /// errors travel inside `resp.code`.
  virtual Status Call(NodeId to, const RpcRequest& req, RpcResponse& resp) = 0;

  /// Completion callback of an asynchronous call: transport status plus the
  /// response (meaningful only when the status is OK).
  using AsyncDone = std::function<void(Status, RpcResponse)>;

  /// Asynchronous variant of Call, the basis of scatter-gather fan-out
  /// (RpcClient::ParallelCall). The default adapter runs the synchronous
  /// Call and invokes `done` inline on the caller's thread, so
  /// single-threaded transports (InProcTransport) stay deterministic: a
  /// fan-out over them executes calls one at a time, in slot order, exactly
  /// like the sequential code path. Concurrent transports override this to
  /// dispatch on worker threads; `done` then runs on such a thread.
  virtual void CallAsync(NodeId to, const RpcRequest& req, AsyncDone done) {
    RpcResponse resp;
    Status st = Call(to, req, resp);
    done(std::move(st), std::move(resp));
  }

  /// Number of request messages successfully delivered from `from` to `to`.
  /// Used by the Figure 16 locality experiment.
  virtual std::uint64_t DeliveredCount(NodeId from, NodeId to) const = 0;

  /// Total requests attempted (delivered or not).
  virtual std::uint64_t TotalAttempts() const = 0;
};

/// Decorator that strips a transport of its concurrent CallAsync: calls are
/// forwarded synchronously and completions run inline, one at a time. Used
/// by the benchmarks and parity tests to measure the sequential baseline on
/// an otherwise concurrent transport (same nodes, same counters).
class SequentialAdapter final : public Transport {
 public:
  explicit SequentialAdapter(Transport& inner) : inner_(&inner) {}

  Status Call(NodeId to, const RpcRequest& req, RpcResponse& resp) override {
    return inner_->Call(to, req, resp);
  }
  // CallAsync: inherited inline default == sequential dispatch.

  std::uint64_t DeliveredCount(NodeId from, NodeId to) const override {
    return inner_->DeliveredCount(from, to);
  }
  std::uint64_t TotalAttempts() const override {
    return inner_->TotalAttempts();
  }

 private:
  Transport* inner_;
};

}  // namespace repdir::net
