// Transport abstraction: synchronous request/response between nodes.
//
// Two implementations exist:
//   * InProcTransport  - deterministic, single-threaded, virtual-clock time;
//                        used by the simulation experiments (Figs. 14/15).
//   * ThreadedTransport - thread-safe loopback with real latency sleeps;
//                        used by the concurrency benchmarks and stress tests.
// Both serialize the envelope through the wire format, so encode/decode is
// exercised on every call, and both honour a sim::NetworkModel for failures.
#pragma once

#include "common/status.h"
#include "net/message.h"

namespace repdir::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Delivers `req` to node `to` and fills `resp`. A non-OK return means the
  /// *transport* failed (node down, partition, drop, timeout); application
  /// errors travel inside `resp.code`.
  virtual Status Call(NodeId to, const RpcRequest& req, RpcResponse& resp) = 0;

  /// Number of request messages successfully delivered from `from` to `to`.
  /// Used by the Figure 16 locality experiment.
  virtual std::uint64_t DeliveredCount(NodeId from, NodeId to) const = 0;

  /// Total requests attempted (delivered or not).
  virtual std::uint64_t TotalAttempts() const = 0;
};

}  // namespace repdir::net
