// Retry policy for transient transport failures (drops, brief partitions).
// Quorum collection uses this when a preferred representative does not
// answer: retry a bounded number of times - backing off exponentially so
// the retries actually span the brief outage instead of burning within
// microseconds - then fall back to a different representative.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"

namespace repdir::net {

struct RetryPolicy {
  std::uint32_t max_attempts = 3;  ///< Total tries, including the first.

  /// Deterministic exponential backoff between attempts: the k-th retry
  /// (k = 1, 2, ...) waits base * 2^(k-1) microseconds, capped. A base of
  /// 0 disables backoff entirely.
  DurationMicros backoff_base_micros = 1'000;
  DurationMicros backoff_cap_micros = 64'000;

  /// How to wait. Null means a real std::this_thread::sleep_for;
  /// deterministic deployments (InProcTransport tests, simulations) inject
  /// a hook - typically a no-op or a virtual-clock advance - so runs stay
  /// instant and reproducible.
  std::function<void(DurationMicros)> sleep{};

  /// Whether `status` is worth retrying: only transport-level
  /// unavailability; application errors (NotFound, Aborted, ...) are final.
  static bool Retriable(const Status& status) {
    return status.code() == StatusCode::kUnavailable;
  }

  /// Delay before retry number `retry` (1-based), in microseconds.
  DurationMicros BackoffDelay(std::uint32_t retry) const {
    if (backoff_base_micros == 0 || retry == 0) return 0;
    DurationMicros delay = backoff_base_micros;
    for (std::uint32_t i = 1; i < retry && delay < backoff_cap_micros; ++i) {
      delay *= 2;
    }
    return delay < backoff_cap_micros ? delay : backoff_cap_micros;
  }

  /// Waits out the backoff for retry number `retry` (1-based).
  void Backoff(std::uint32_t retry) const {
    const DurationMicros delay = BackoffDelay(retry);
    if (delay == 0) return;
    if (sleep) {
      sleep(delay);
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
  }
};

/// Runs `fn` (returning Status) up to `policy.max_attempts` times while the
/// failure is retriable, backing off between attempts. Returns the last
/// status. When `metrics` is given, retries and backoff time are recorded
/// ("rpc.retries", "rpc.backoff_us").
template <typename Fn>
Status WithRetry(const RetryPolicy& policy, Fn&& fn,
                 MetricsRegistry* metrics = nullptr) {
  Status last = Status::Internal("retry loop did not run");
  for (std::uint32_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    last = fn();
    if (last.ok() || !RetryPolicy::Retriable(last)) return last;
    if (attempt < policy.max_attempts) {
      if (metrics != nullptr) {
        metrics->counter("rpc.retries").Increment();
        metrics->distribution("rpc.backoff_us")
            .Record(static_cast<double>(policy.BackoffDelay(attempt)));
      }
      policy.Backoff(attempt);
    }
  }
  return last;
}

}  // namespace repdir::net
