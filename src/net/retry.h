// Retry policy for transient transport failures (drops, brief partitions).
// Quorum collection uses this when a preferred representative does not
// answer: retry a bounded number of times, then fall back to a different
// representative.
#pragma once

#include <cstdint>

#include "common/status.h"

namespace repdir::net {

struct RetryPolicy {
  std::uint32_t max_attempts = 3;  ///< Total tries, including the first.

  /// Whether `status` is worth retrying: only transport-level
  /// unavailability; application errors (NotFound, Aborted, ...) are final.
  static bool Retriable(const Status& status) {
    return status.code() == StatusCode::kUnavailable;
  }
};

/// Runs `fn` (returning Status) up to `policy.max_attempts` times while the
/// failure is retriable. Returns the last status.
template <typename Fn>
Status WithRetry(const RetryPolicy& policy, Fn&& fn) {
  Status last = Status::Internal("retry loop did not run");
  for (std::uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    last = fn();
    if (last.ok() || !RetryPolicy::Retriable(last)) return last;
  }
  return last;
}

}  // namespace repdir::net
