#include "net/threaded_transport.h"

#include <chrono>
#include <thread>

namespace repdir::net {

void ThreadedTransport::CallAsync(NodeId to, const RpcRequest& req,
                                  AsyncDone done) {
  pool_.Submit([this, to, req, done = std::move(done)] {
    RpcResponse resp;
    Status st = Call(to, req, resp);
    done(std::move(st), std::move(resp));
  });
}

Status ThreadedTransport::Call(NodeId to, const RpcRequest& req,
                               RpcResponse& resp) {
  attempts_.fetch_add(1, std::memory_order_relaxed);

  RpcServer* server = nullptr;
  DurationMicros round_trip = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    const auto it = servers_.find(to);
    if (it == servers_.end()) {
      return Status::Unavailable("no such node " + std::to_string(to));
    }
    if (network_ != nullptr) {
      Result<DurationMicros> outbound = network_->DeliveryDelay(req.from, to);
      if (!outbound.ok()) return outbound.status();
      Result<DurationMicros> inbound = network_->DeliveryDelay(to, req.from);
      if (!inbound.ok()) return inbound.status();
      round_trip = *outbound + *inbound;
    }
    server = it->second;
    ++delivered_[{req.from, to}];
  }

  const std::string wire = EncodeToString(req);
  RpcRequest decoded;
  REPDIR_RETURN_IF_ERROR(DecodeFromString(wire, decoded));

  if (round_trip > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(round_trip));
  }

  RpcResponse server_resp = server->Dispatch(decoded);
  const std::string resp_wire = EncodeToString(server_resp);
  return DecodeFromString(resp_wire, resp);
}

}  // namespace repdir::net
