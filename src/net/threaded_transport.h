// Thread-safe loopback transport for concurrency benchmarks and stress
// tests.
//
// Requests are dispatched synchronously on the caller's thread (standard
// in-process RPC testing topology): the caller blocks exactly as a
// synchronous RPC client would, lock waits inside the representative are
// visible to the deadlock detector, and many client threads drive many
// concurrent server executions. Latency from the network model is honoured
// with real sleeps; failures surface as kUnavailable.
#pragma once

#include <atomic>
#include <map>
#include <mutex>

#include "net/rpc_server.h"
#include "net/transport.h"
#include "net/worker_pool.h"
#include "sim/network_model.h"

namespace repdir::net {

class ThreadedTransport final : public Transport {
 public:
  /// `async_workers` bounds how many asynchronous calls execute
  /// concurrently (CallAsync); synchronous Call is unaffected.
  explicit ThreadedTransport(sim::NetworkModel* network = nullptr,
                             std::size_t async_workers = 16)
      : network_(network), pool_(async_workers) {}

  void RegisterNode(NodeId node, RpcServer& server) {
    std::lock_guard<std::mutex> guard(mu_);
    servers_[node] = &server;
  }

  Status Call(NodeId to, const RpcRequest& req, RpcResponse& resp) override;

  /// Dispatches on the worker pool, so concurrent fan-out calls overlap
  /// their latency sleeps; `done` runs on a pool thread.
  void CallAsync(NodeId to, const RpcRequest& req, AsyncDone done) override;

  std::uint64_t DeliveredCount(NodeId from, NodeId to) const override {
    std::lock_guard<std::mutex> guard(mu_);
    const auto it = delivered_.find({from, to});
    return it == delivered_.end() ? 0 : it->second;
  }

  std::uint64_t TotalAttempts() const override {
    return attempts_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  sim::NetworkModel* network_;  // guarded by mu_ (Rng inside is not atomic)
  std::map<NodeId, RpcServer*> servers_;
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> delivered_;
  std::atomic<std::uint64_t> attempts_{0};
  WorkerPool pool_;
};

}  // namespace repdir::net
