#include "net/worker_pool.h"

namespace repdir::net {

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!shutdown_) {
      if (workers_.empty()) {
        workers_.reserve(threads_);
        for (std::size_t i = 0; i < threads_; ++i) {
          workers_.emplace_back([this] { Loop(); });
        }
      }
      queue_.push_back(std::move(task));
      cv_.notify_one();
      return;
    }
  }
  // After Shutdown the pool degrades to synchronous execution.
  task();
}

void WorkerPool::Shutdown() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
    workers.swap(workers_);
    cv_.notify_all();
  }
  for (std::thread& w : workers) w.join();
}

void WorkerPool::Loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shut down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace repdir::net
