// RPC envelope: every call is a (method, txn, payload) request answered by a
// (status, payload) response. Payloads are pre-serialized bytes so the
// envelope layer is independent of any particular service schema.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "common/types.h"

namespace repdir::net {

/// Method identifiers are per-service; services allocate them from disjoint
/// ranges (see rep/dir_rep_service.h).
using MethodId = std::uint16_t;

struct RpcRequest {
  NodeId from = kInvalidNode;   ///< Calling node (client or coordinator).
  MethodId method = 0;          ///< Which handler to invoke.
  TxnId txn = kInvalidTxn;      ///< Transaction this call executes within.
  std::uint64_t shard_epoch = 0; ///< Caller's shard-map version (0 = not shard-aware).
  std::string payload;          ///< Serialized request body.

  void Encode(ByteWriter& w) const {
    w.PutU32(from);
    w.PutU32(method);
    w.PutU64(txn);
    w.PutU64(shard_epoch);
    w.PutString(payload);
  }

  Status Decode(ByteReader& r) {
    std::uint32_t method32 = 0;
    REPDIR_RETURN_IF_ERROR(r.GetU32(from));
    REPDIR_RETURN_IF_ERROR(r.GetU32(method32));
    if (method32 > 0xffff) return Status::Corruption("method id out of range");
    method = static_cast<MethodId>(method32);
    REPDIR_RETURN_IF_ERROR(r.GetU64(txn));
    REPDIR_RETURN_IF_ERROR(r.GetU64(shard_epoch));
    return r.GetString(payload);
  }
};

struct RpcResponse {
  StatusCode code = StatusCode::kOk;  ///< Application-level outcome.
  std::string error_message;          ///< Non-empty iff code != kOk.
  std::string payload;                ///< Serialized response body (if OK).

  void Encode(ByteWriter& w) const {
    w.PutU8(static_cast<std::uint8_t>(code));
    w.PutString(error_message);
    w.PutString(payload);
  }

  Status Decode(ByteReader& r) {
    std::uint8_t code8 = 0;
    REPDIR_RETURN_IF_ERROR(r.GetU8(code8));
    if (code8 > static_cast<std::uint8_t>(StatusCode::kWrongShard)) {
      return Status::Corruption("status code out of range");
    }
    code = static_cast<StatusCode>(code8);
    REPDIR_RETURN_IF_ERROR(r.GetString(error_message));
    return r.GetString(payload);
  }

  /// Converts the application-level outcome back into a Status.
  Status ToStatus() const {
    if (code == StatusCode::kOk) return Status::Ok();
    return Status(code, error_message);
  }

  static RpcResponse FromStatus(const Status& s) {
    RpcResponse resp;
    resp.code = s.code();
    resp.error_message = s.message();
    return resp;
  }
};

}  // namespace repdir::net
