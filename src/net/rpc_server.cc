#include "net/rpc_server.h"

#include <cassert>
#include <chrono>
#include <thread>

namespace repdir::net {

void RpcServer::RegisterMethod(MethodId method, Handler handler) {
  const auto [it, inserted] = handlers_.emplace(method, std::move(handler));
  (void)it;
  assert(inserted && "method registered twice");
}

RpcResponse RpcServer::Dispatch(const RpcRequest& req) const {
  const auto it = handlers_.find(req.method);
  if (it == handlers_.end()) {
    return RpcResponse::FromStatus(Status::InvalidArgument(
        "no handler for method " + std::to_string(req.method)));
  }
  auto run = [&] {
    ByteWriter out;
    const Status st = it->second(req, out);
    if (!st.ok()) return RpcResponse::FromStatus(st);
    RpcResponse resp;
    resp.payload = out.TakeString();
    return resp;
  };
  if (!serial_) return run();
  std::lock_guard<std::mutex> lk(serial_mu_);
  if (service_time_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(service_time_us_));
  }
  return run();
}

}  // namespace repdir::net
