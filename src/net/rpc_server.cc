#include "net/rpc_server.h"

#include <cassert>

namespace repdir::net {

void RpcServer::RegisterMethod(MethodId method, Handler handler) {
  const auto [it, inserted] = handlers_.emplace(method, std::move(handler));
  (void)it;
  assert(inserted && "method registered twice");
}

RpcResponse RpcServer::Dispatch(const RpcRequest& req) const {
  const auto it = handlers_.find(req.method);
  if (it == handlers_.end()) {
    return RpcResponse::FromStatus(Status::InvalidArgument(
        "no handler for method " + std::to_string(req.method)));
  }
  ByteWriter out;
  const Status st = it->second(req, out);
  if (!st.ok()) return RpcResponse::FromStatus(st);
  RpcResponse resp;
  resp.payload = out.TakeString();
  return resp;
}

}  // namespace repdir::net
