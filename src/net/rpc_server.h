// Per-node RPC dispatcher: a registry of method handlers. Services (e.g.
// rep::DirRepService) register their methods here; transports deliver
// decoded requests via Dispatch().
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "net/message.h"
#include "net/wire.h"

namespace repdir::net {

class RpcServer {
 public:
  /// A handler consumes the envelope and, on success, writes its response
  /// payload into `out`.
  using Handler =
      std::function<Status(const RpcRequest& req, ByteWriter& out)>;

  explicit RpcServer(NodeId node) : node_(node) {}

  NodeId node() const { return node_; }

  /// Registers a handler; each method id may be bound once.
  void RegisterMethod(MethodId method, Handler handler);

  /// Convenience registration for handlers with typed request/response:
  /// `fn(const Req&, Resp&) -> Status`, with txn id available separately.
  template <WireMessage Req, WireMessage Resp, typename Fn>
  void RegisterTyped(MethodId method, Fn fn) {
    RegisterMethod(method, [fn](const RpcRequest& req, ByteWriter& out) {
      Req typed_req;
      REPDIR_RETURN_IF_ERROR(DecodeFromString(req.payload, typed_req));
      Resp typed_resp;
      REPDIR_RETURN_IF_ERROR(fn(req, typed_req, typed_resp));
      typed_resp.Encode(out);
      return Status::Ok();
    });
  }

  /// Models the paper's single-threaded representative process: Dispatch
  /// runs one request at a time, each charged `service_time_us` of
  /// simulated work before its handler. Off by default (concurrent
  /// dispatch, no added cost). Saturation benches turn it on so a replica
  /// set has a real per-node capacity - and partitioning the keyspace a
  /// real capacity to multiply. Callers must ensure handlers cannot block
  /// on another dispatch of the same node (e.g. lock conflicts between
  /// concurrent clients) or the serial queue deadlocks.
  void ModelSingleThreaded(DurationMicros service_time_us) {
    serial_ = true;
    service_time_us_ = service_time_us;
  }

  /// Runs the handler for `req`. Handler errors become application-level
  /// error responses, never transport failures.
  RpcResponse Dispatch(const RpcRequest& req) const;

 private:
  NodeId node_;
  std::map<MethodId, Handler> handlers_;
  bool serial_ = false;
  DurationMicros service_time_us_ = 0;
  mutable std::mutex serial_mu_;
};

}  // namespace repdir::net
