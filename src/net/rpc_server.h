// Per-node RPC dispatcher: a registry of method handlers. Services (e.g.
// rep::DirRepService) register their methods here; transports deliver
// decoded requests via Dispatch().
#pragma once

#include <functional>
#include <map>
#include <string>

#include "net/message.h"
#include "net/wire.h"

namespace repdir::net {

class RpcServer {
 public:
  /// A handler consumes the envelope and, on success, writes its response
  /// payload into `out`.
  using Handler =
      std::function<Status(const RpcRequest& req, ByteWriter& out)>;

  explicit RpcServer(NodeId node) : node_(node) {}

  NodeId node() const { return node_; }

  /// Registers a handler; each method id may be bound once.
  void RegisterMethod(MethodId method, Handler handler);

  /// Convenience registration for handlers with typed request/response:
  /// `fn(const Req&, Resp&) -> Status`, with txn id available separately.
  template <WireMessage Req, WireMessage Resp, typename Fn>
  void RegisterTyped(MethodId method, Fn fn) {
    RegisterMethod(method, [fn](const RpcRequest& req, ByteWriter& out) {
      Req typed_req;
      REPDIR_RETURN_IF_ERROR(DecodeFromString(req.payload, typed_req));
      Resp typed_resp;
      REPDIR_RETURN_IF_ERROR(fn(req, typed_req, typed_resp));
      typed_resp.Encode(out);
      return Status::Ok();
    });
  }

  /// Runs the handler for `req`. Handler errors become application-level
  /// error responses, never transport failures.
  RpcResponse Dispatch(const RpcRequest& req) const;

 private:
  NodeId node_;
  std::map<MethodId, Handler> handlers_;
};

}  // namespace repdir::net
