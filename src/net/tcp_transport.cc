#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>

#include "net/wire.h"

namespace repdir::net {

namespace {

Status WriteAll(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t written = ::send(fd, p, n, MSG_NOSIGNAL);
    if (written <= 0) {
      return Status::Unavailable("tcp send failed: " +
                                 std::string(std::strerror(errno)));
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
  return Status::Ok();
}

int ConnectTo(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// --- TcpServer ---

TcpServer::Conn::~Conn() { ::close(fd); }

Result<std::uint16_t> TcpServer::Start(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("bind failed: " +
                               std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("listen failed");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void TcpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listen socket closed: shutting down
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Conn>(fd);
    std::lock_guard<std::mutex> guard(mu_);
    if (stopping_.load()) return;  // conn dtor closes fd
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { ServeConnection(conn); });
  }
}

void TcpServer::ServeConnection(const std::shared_ptr<Conn>& conn) {
  // Reader: reassemble request frames and hand each to the shared pool.
  // Handlers run concurrently (an N-deep pipeline of requests executes in
  // parallel) and write their responses as they finish, in completion
  // order - the correlation id is what lets the client match them up.
  std::string in;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t got = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (got <= 0) break;
    in.append(buf, static_cast<std::size_t>(got));
    std::size_t off = 0;
    bool poisoned = false;
    while (in.size() - off >= kTcpFrameHeaderBytes) {
      std::uint32_t len = 0;
      std::uint64_t corr = 0;
      DecodeTcpFrameHeader(in.data() + off, len, corr);
      if (len > kMaxTcpFrame) {
        poisoned = true;  // unframeable garbage: drop the connection
        break;
      }
      if (in.size() - off < kTcpFrameHeaderBytes + len) break;
      std::string payload =
          in.substr(off + kTcpFrameHeaderBytes, len);
      off += kTcpFrameHeaderBytes + len;
      requests_.fetch_add(1, std::memory_order_relaxed);
      pool_.Submit([this, conn, corr, payload = std::move(payload)] {
        RpcRequest req;
        RpcResponse resp;
        if (DecodeFromString(payload, req).ok()) {
          resp = service_->Dispatch(req);
        } else {
          resp = RpcResponse::FromStatus(
              Status::Corruption("undecodable request frame"));
        }
        std::string frame;
        AppendTcpFrame(frame, corr, EncodeToString(resp));
        std::lock_guard<std::mutex> wlk(conn->write_mu);
        // A failed write means the peer is gone; the reader notices too.
        (void)WriteAll(conn->fd, frame.data(), frame.size());
      });
    }
    in.erase(0, off);
    if (poisoned) break;
  }
  ::shutdown(conn->fd, SHUT_RDWR);
}

void TcpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::thread> readers;
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (const auto& conn : conns_) ::shutdown(conn->fd, SHUT_RDWR);
    readers.swap(readers_);
    conns.swap(conns_);
  }
  for (auto& r : readers) r.join();
  // Drain in-flight handlers before the fds close (each task holds a
  // shared_ptr to its connection, so writes target a live descriptor).
  pool_.Shutdown();
  conns.clear();
  listen_fd_ = -1;
}

// --- TcpTransport ---

TcpTransport::TcpTransport() {
  epoll_fd_ = ::epoll_create1(0);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  loop_ = std::thread([this] { Loop(); });
}

TcpTransport::~TcpTransport() {
  stopping_.store(true);
  Wake();
  if (loop_.joinable()) loop_.join();
  // Fail whatever is still in flight; completions queued by the loop are
  // drained by the pool shutdown below.
  std::map<NodeId, std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> guard(mu_);
    conns.swap(conns_);
  }
  for (auto& [node, conn] : conns) {
    std::map<std::uint64_t, PendingCall> pending;
    {
      std::lock_guard<std::mutex> lk(conn->mu);
      conn->dead = true;
      pending.swap(conn->pending);
    }
    for (auto& [corr, call] : pending) {
      call.done(Status::Unavailable("transport shut down"), RpcResponse{});
    }
  }
  done_pool_.Shutdown();
  for (auto& [fd, conn] : loop_conns_) ::close(fd);
  {
    std::lock_guard<std::mutex> lk(ctl_mu_);
    for (auto& conn : to_register_) {
      if (!loop_conns_.contains(conn->fd)) ::close(conn->fd);
    }
    to_register_.clear();
  }
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void TcpTransport::AddRoute(NodeId node, const std::string& host,
                            std::uint16_t port) {
  std::shared_ptr<Conn> stale;
  {
    std::lock_guard<std::mutex> guard(mu_);
    routes_[node] = Route{host, port};
    const auto it = conns_.find(node);
    if (it != conns_.end()) {
      // A re-route means the old endpoint is gone (a respawned node on a
      // fresh port): retire the connection, failing its pipelined calls.
      stale = it->second;
      conns_.erase(it);
    }
  }
  if (stale != nullptr) {
    std::lock_guard<std::mutex> lk(ctl_mu_);
    to_drop_.push_back(std::move(stale));
    Wake();
  }
}

Result<std::shared_ptr<TcpTransport::Conn>> TcpTransport::GetConn(NodeId to) {
  std::lock_guard<std::mutex> guard(mu_);
  const auto r = routes_.find(to);
  if (r == routes_.end()) {
    return Status::Unavailable("no route to node " + std::to_string(to));
  }
  const auto it = conns_.find(to);
  if (it != conns_.end()) {
    bool dead = false;
    {
      std::lock_guard<std::mutex> lk(it->second->mu);
      dead = it->second->dead;
    }
    if (!dead) return it->second;
    conns_.erase(it);
  }
  const int fd = ConnectTo(r->second.host, r->second.port);
  if (fd < 0) {
    return Status::Unavailable("cannot connect to node " + std::to_string(to));
  }
  SetNonBlocking(fd);
  connections_opened_.fetch_add(1, std::memory_order_relaxed);
  auto conn = std::make_shared<Conn>();
  conn->fd = fd;
  conn->node = to;
  conns_[to] = conn;
  {
    std::lock_guard<std::mutex> lk(ctl_mu_);
    to_register_.push_back(conn);
  }
  Wake();
  return conn;
}

void TcpTransport::CallAsync(NodeId to, const RpcRequest& req,
                             AsyncDone done) {
  attempts_.fetch_add(1, std::memory_order_relaxed);
  auto conn_or = GetConn(to);
  if (!conn_or.ok()) {
    done(conn_or.status(), RpcResponse{});
    return;
  }
  const std::string payload = EncodeToString(req);
  if (payload.size() > kMaxTcpFrame) {
    done(Status::InvalidArgument("frame too large"), RpcResponse{});
    return;
  }
  const std::shared_ptr<Conn>& conn = *conn_or;
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    if (conn->dead) {
      done(Status::Unavailable("tcp connection closed"), RpcResponse{});
      return;
    }
    const std::uint64_t corr = conn->next_corr++;
    conn->pending[corr] = PendingCall{std::move(done), req.from, to};
    AppendTcpFrame(conn->out, corr, payload);
    conn->want_write = true;
  }
  Wake();
}

Status TcpTransport::Call(NodeId to, const RpcRequest& req,
                          RpcResponse& resp) {
  struct SyncState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status st = Status::Ok();
    RpcResponse resp;
  };
  auto state = std::make_shared<SyncState>();
  CallAsync(to, req, [state](Status st, RpcResponse r) {
    std::lock_guard<std::mutex> lk(state->mu);
    state->st = std::move(st);
    state->resp = std::move(r);
    state->done = true;
    state->cv.notify_all();
  });
  std::unique_lock<std::mutex> lk(state->mu);
  state->cv.wait(lk, [&] { return state->done; });
  resp = std::move(state->resp);
  return state->st;
}

std::uint64_t TcpTransport::DeliveredCount(NodeId from, NodeId to) const {
  std::lock_guard<std::mutex> guard(mu_);
  const auto it = delivered_.find({from, to});
  return it == delivered_.end() ? 0 : it->second;
}

void TcpTransport::Wake() {
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void TcpTransport::Complete(PendingCall call, Status st, RpcResponse resp) {
  done_pool_.Submit(
      [call = std::move(call), st = std::move(st),
       resp = std::move(resp)]() mutable {
        call.done(std::move(st), std::move(resp));
      });
}

void TcpTransport::DropConn(const std::shared_ptr<Conn>& conn) {
  std::map<std::uint64_t, PendingCall> pending;
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    if (conn->dead) return;
    conn->dead = true;
    pending.swap(conn->pending);
  }
  {
    std::lock_guard<std::mutex> guard(mu_);
    const auto it = conns_.find(conn->node);
    if (it != conns_.end() && it->second == conn) conns_.erase(it);
  }
  if (loop_conns_.erase(conn->fd) > 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
  }
  for (auto& [corr, call] : pending) {
    Complete(std::move(call), Status::Unavailable("tcp connection closed"),
             RpcResponse{});
  }
}

void TcpTransport::SyncInterest() {
  for (auto& [fd, conn] : loop_conns_) {
    bool want = false;
    {
      std::lock_guard<std::mutex> lk(conn->mu);
      want = conn->want_write && !conn->dead;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }
}

void TcpTransport::HandleWritable(const std::shared_ptr<Conn>& conn) {
  bool drop = false;
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    while (conn->out_off < conn->out.size()) {
      const ssize_t sent =
          ::send(conn->fd, conn->out.data() + conn->out_off,
                 conn->out.size() - conn->out_off, MSG_NOSIGNAL);
      if (sent > 0) {
        conn->out_off += static_cast<std::size_t>(sent);
        continue;
      }
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      drop = true;
      break;
    }
    if (conn->out_off == conn->out.size()) {
      conn->out.clear();
      conn->out_off = 0;
      conn->want_write = false;
    }
  }
  if (drop) DropConn(conn);
}

void TcpTransport::HandleReadable(const std::shared_ptr<Conn>& conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t got = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (got > 0) {
      conn->in.append(buf, static_cast<std::size_t>(got));
      if (got < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    DropConn(conn);  // EOF or hard error
    return;
  }
  std::size_t off = 0;
  while (conn->in.size() - off >= kTcpFrameHeaderBytes) {
    std::uint32_t len = 0;
    std::uint64_t corr = 0;
    DecodeTcpFrameHeader(conn->in.data() + off, len, corr);
    if (len > kMaxTcpFrame) {
      conn->in.erase(0, off);
      DropConn(conn);  // unframeable garbage
      return;
    }
    if (conn->in.size() - off < kTcpFrameHeaderBytes + len) break;
    const std::string payload =
        conn->in.substr(off + kTcpFrameHeaderBytes, len);
    off += kTcpFrameHeaderBytes + len;

    PendingCall call;
    bool found = false;
    {
      std::lock_guard<std::mutex> lk(conn->mu);
      const auto it = conn->pending.find(corr);
      if (it != conn->pending.end()) {
        call = std::move(it->second);
        conn->pending.erase(it);
        found = true;
      }
    }
    if (!found) continue;  // stale/unknown correlation id: ignore

    RpcResponse resp;
    Status st = DecodeFromString(payload, resp);
    if (st.ok()) {
      std::lock_guard<std::mutex> guard(mu_);
      ++delivered_[{call.from, call.to}];
    } else {
      st = Status::Corruption("undecodable response frame");
    }
    Complete(std::move(call), std::move(st), std::move(resp));
  }
  conn->in.erase(0, off);
}

void TcpTransport::Loop() {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, 100);
    if (stopping_.load(std::memory_order_relaxed)) return;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        (void)!::read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      const auto it = loop_conns_.find(fd);
      if (it == loop_conns_.end()) continue;  // dropped earlier this batch
      const std::shared_ptr<Conn> conn = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        // Let the read path consume whatever is buffered, then drop.
        HandleReadable(conn);
        if (loop_conns_.contains(fd)) DropConn(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) HandleReadable(conn);
      if ((events[i].events & EPOLLOUT) != 0 && loop_conns_.contains(fd)) {
        HandleWritable(conn);
      }
    }
    // Register newcomers, retire rerouted connections, refresh interest.
    std::vector<std::shared_ptr<Conn>> add;
    std::vector<std::shared_ptr<Conn>> drop;
    {
      std::lock_guard<std::mutex> lk(ctl_mu_);
      add.swap(to_register_);
      drop.swap(to_drop_);
    }
    for (const auto& conn : add) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = conn->fd;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &ev) == 0) {
        loop_conns_[conn->fd] = conn;
      } else {
        DropConn(conn);
      }
    }
    for (const auto& conn : drop) DropConn(conn);
    SyncInterest();
  }
}

}  // namespace repdir::net
