#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace repdir::net {

namespace {

constexpr std::uint32_t kMaxFrame = 16u << 20;  // 16 MiB sanity cap

Status WriteAll(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t written = ::send(fd, p, n, MSG_NOSIGNAL);
    if (written <= 0) {
      return Status::Unavailable("tcp send failed: " +
                                 std::string(std::strerror(errno)));
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
  return Status::Ok();
}

Status ReadAll(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got == 0) return Status::Unavailable("tcp connection closed");
    if (got < 0) {
      return Status::Unavailable("tcp recv failed: " +
                                 std::string(std::strerror(errno)));
    }
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return Status::Ok();
}

Status WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrame) {
    return Status::InvalidArgument("frame too large");
  }
  // Single buffered write: little-endian length prefix + payload.
  std::string frame;
  frame.reserve(4 + payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((payload.size() >> (8 * i)) & 0xff));
  }
  frame += payload;
  return WriteAll(fd, frame.data(), frame.size());
}

Status ReadFrame(int fd, std::string& payload) {
  unsigned char header[4];
  REPDIR_RETURN_IF_ERROR(ReadAll(fd, header, 4));
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxFrame) return Status::Corruption("oversized tcp frame");
  payload.resize(len);
  return len == 0 ? Status::Ok() : ReadAll(fd, payload.data(), len);
}

int ConnectTo(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Result<std::uint16_t> TcpServer::Start(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("bind failed: " +
                               std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("listen failed");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void TcpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listen socket closed: shutting down
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> guard(mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    open_fds_.push_back(fd);
    workers_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServer::ServeConnection(int fd) {
  std::string request_bytes;
  for (;;) {
    if (!ReadFrame(fd, request_bytes).ok()) break;
    RpcRequest req;
    RpcResponse resp;
    if (DecodeFromString(request_bytes, req).ok()) {
      resp = service_->Dispatch(req);
    } else {
      resp = RpcResponse::FromStatus(
          Status::Corruption("undecodable request frame"));
    }
    if (!WriteFrame(fd, EncodeToString(resp)).ok()) break;
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

void TcpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    workers.swap(workers_);
    open_fds_.clear();
  }
  for (auto& w : workers) w.join();
  listen_fd_ = -1;
}

TcpTransport::~TcpTransport() {
  // Drain in-flight asynchronous calls before closing their connections.
  pool_.Shutdown();
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& [node, fds] : idle_) {
    for (const int fd : fds) ::close(fd);
  }
}

void TcpTransport::CallAsync(NodeId to, const RpcRequest& req,
                             AsyncDone done) {
  pool_.Submit([this, to, req, done = std::move(done)] {
    RpcResponse resp;
    Status st = Call(to, req, resp);
    done(std::move(st), std::move(resp));
  });
}

void TcpTransport::AddRoute(NodeId node, const std::string& host,
                            std::uint16_t port) {
  std::lock_guard<std::mutex> guard(mu_);
  routes_[node] = Route{host, port};
}

Result<int> TcpTransport::Checkout(NodeId to) {
  Route route;
  {
    std::lock_guard<std::mutex> guard(mu_);
    const auto r = routes_.find(to);
    if (r == routes_.end()) {
      return Status::Unavailable("no route to node " + std::to_string(to));
    }
    route = r->second;
    auto& pool = idle_[to];
    if (!pool.empty()) {
      const int fd = pool.back();
      pool.pop_back();
      return fd;
    }
  }
  const int fd = ConnectTo(route.host, route.port);
  if (fd < 0) {
    return Status::Unavailable("cannot connect to node " + std::to_string(to));
  }
  return fd;
}

void TcpTransport::CheckIn(NodeId to, int fd) {
  std::lock_guard<std::mutex> guard(mu_);
  idle_[to].push_back(fd);
}

Status TcpTransport::Call(NodeId to, const RpcRequest& req,
                          RpcResponse& resp) {
  attempts_.fetch_add(1, std::memory_order_relaxed);
  REPDIR_ASSIGN_OR_RETURN(const int fd, Checkout(to));

  const Status st = [&]() -> Status {
    REPDIR_RETURN_IF_ERROR(WriteFrame(fd, EncodeToString(req)));
    std::string response_bytes;
    REPDIR_RETURN_IF_ERROR(ReadFrame(fd, response_bytes));
    return DecodeFromString(response_bytes, resp);
  }();

  if (!st.ok()) {
    ::close(fd);  // connection state unknown: drop it
    return st;
  }
  CheckIn(to, fd);
  std::lock_guard<std::mutex> guard(mu_);
  ++delivered_[{req.from, to}];
  return Status::Ok();
}

std::uint64_t TcpTransport::DeliveredCount(NodeId from, NodeId to) const {
  std::lock_guard<std::mutex> guard(mu_);
  const auto it = delivered_.find({from, to});
  return it == delivered_.end() ? 0 : it->second;
}

}  // namespace repdir::net
